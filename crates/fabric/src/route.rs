//! Source-routing tables for multi-cube fabrics.
//!
//! HMC chaining is *source-routed*: the host stamps each request with a
//! CUB field (6 bits here — see `DESIGN_CUB64.md`) and every cube's link
//! layer forwards packets whose CUB
//! does not match its own id toward the destination. The [`RouteTable`]
//! here is the static next-hop function the cubes consult; it is built
//! once per topology and guaranteed total, loop-free and deterministic
//! (the fabric property tests lock those invariants down).

use core::fmt;

use crate::config::{CubeId, Topology};

/// A dense next-hop table: `next_hop(src, dst)` for every cube pair.
///
/// # Examples
///
/// ```
/// use hmc_fabric::{CubeId, RouteTable, Topology};
///
/// let routes = RouteTable::for_topology(Topology::Chain, 4);
/// assert_eq!(routes.next_hop(CubeId(0), CubeId(3)), CubeId(1));
/// assert_eq!(routes.hops(CubeId(0), CubeId(3)), 3);
/// assert_eq!(
///     routes.path(CubeId(3), CubeId(0)),
///     vec![CubeId(3), CubeId(2), CubeId(1), CubeId(0)]
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteTable {
    n: u8,
    /// Flattened `n × n`: `next[src * n + dst]`, with `next[c * n + c] = c`.
    next: Vec<u8>,
}

impl RouteTable {
    /// Builds the deterministic shortest-path table for `topology` over
    /// `n` cubes.
    ///
    /// Tie-breaking is fixed: on a ring with an even cube count, the two
    /// directions to the antipodal cube are equally long and the
    /// clockwise (ascending-id) direction is chosen. Mesh and torus use
    /// dimension-ordered routing (X fully, then Y), each torus dimension
    /// breaking its antipodal tie clockwise like the ring.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or above [`crate::FabricConfig::MAX_CUBES`].
    pub fn for_topology(topology: Topology, n: u8) -> RouteTable {
        assert!(n >= 1, "a fabric needs at least one cube");
        assert!(
            n <= crate::FabricConfig::MAX_CUBES,
            "the 6-bit CUB field addresses at most 64 cubes"
        );
        let nn = usize::from(n);
        let mut next = vec![0u8; nn * nn];
        for src in 0..n {
            for dst in 0..n {
                next[usize::from(src) * nn + usize::from(dst)] = if src == dst {
                    src
                } else {
                    match topology {
                        Topology::Chain => {
                            if dst > src {
                                src + 1
                            } else {
                                src - 1
                            }
                        }
                        Topology::Star => {
                            if src == 0 {
                                dst
                            } else {
                                0
                            }
                        }
                        Topology::Ring => ring_step(src, dst, n),
                        Topology::Mesh2D | Topology::Torus2D => {
                            let (w, _) = Topology::grid_dims(n);
                            let wrap = topology == Topology::Torus2D;
                            let (sx, sy) = (src % w, src / w);
                            let (dx, dy) = (dst % w, dst / w);
                            // Dimension-ordered: correct X first, then Y.
                            if sx != dx {
                                sy * w + dim_step(sx, dx, w, wrap)
                            } else {
                                dim_step(sy, dy, n / w, wrap) * w + sx
                            }
                        }
                    }
                };
            }
        }
        RouteTable { n, next }
    }

    /// Builds a shortest-path table for `topology` over `n` cubes that
    /// avoids the given permanently dead cube-to-cube links (unordered
    /// pairs — a dead link is dead in both directions).
    ///
    /// On a ring, mesh or torus the surviving links usually still connect
    /// every cube, so traffic reroutes around the dead edge. On a chain
    /// or star any dead link disconnects the fabric, and the build fails
    /// loudly instead of silently dropping the stranded cubes' traffic.
    ///
    /// The table is built by per-source BFS with ascending-id neighbor
    /// order, so it is deterministic; with no dead edges callers should
    /// keep [`RouteTable::for_topology`], whose ring tie-break is part of
    /// the calibrated baseline.
    ///
    /// # Errors
    ///
    /// Returns a description naming the offending edge or the first
    /// unreachable cube pair.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or above [`crate::FabricConfig::MAX_CUBES`].
    pub fn avoiding(topology: Topology, n: u8, dead: &[(u8, u8)]) -> Result<RouteTable, String> {
        assert!(n >= 1, "a fabric needs at least one cube");
        assert!(
            n <= crate::FabricConfig::MAX_CUBES,
            "the 6-bit CUB field addresses at most 64 cubes"
        );
        for &(a, b) in dead {
            if a >= n || b >= n {
                return Err(format!("dead edge {a}-{b} names a cube outside the fabric"));
            }
            if !topology.neighbors(n, CubeId(a)).contains(&CubeId(b)) {
                return Err(format!(
                    "dead edge {a}-{b} is not a {} fabric link",
                    topology.label()
                ));
            }
        }
        let is_dead = |a: u8, b: u8| dead.iter().any(|&(x, y)| (x, y) == (a.min(b), a.max(b)));
        let nn = usize::from(n);
        let mut next = vec![0u8; nn * nn];
        for src in 0..n {
            // BFS over the surviving links; first visit (in ascending id
            // order) fixes each cube's parent, hence the route.
            let mut parent = vec![u8::MAX; nn];
            parent[usize::from(src)] = src;
            let mut frontier = vec![src];
            while !frontier.is_empty() {
                let mut grown = Vec::new();
                for &a in &frontier {
                    for nb in topology.neighbors(n, CubeId(a)) {
                        let b = nb.0;
                        if parent[usize::from(b)] == u8::MAX && !is_dead(a, b) {
                            parent[usize::from(b)] = a;
                            grown.push(b);
                        }
                    }
                }
                frontier = grown;
            }
            for dst in 0..n {
                next[usize::from(src) * nn + usize::from(dst)] = if src == dst {
                    src
                } else {
                    if parent[usize::from(dst)] == u8::MAX {
                        return Err(format!(
                            "dead link(s) disconnect the {} fabric: \
                             cube {dst} is unreachable from cube {src}",
                            topology.label()
                        ));
                    }
                    let mut at = dst;
                    while parent[usize::from(at)] != src {
                        at = parent[usize::from(at)];
                    }
                    at
                };
            }
        }
        Ok(RouteTable { n, next })
    }

    /// Number of cubes covered by the table.
    #[inline]
    pub fn cube_count(&self) -> u8 {
        self.n
    }

    /// The next cube on the route from `from` to `to` (`from` itself when
    /// already at the destination).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[inline]
    pub fn next_hop(&self, from: CubeId, to: CubeId) -> CubeId {
        let nn = usize::from(self.n);
        CubeId(self.next[from.index() * nn + to.index()])
    }

    /// The full route from `from` to `to`, both endpoints included.
    ///
    /// # Panics
    ///
    /// Panics if the table contains a loop (construction makes this
    /// impossible; the check guards hand-built tables).
    pub fn path(&self, from: CubeId, to: CubeId) -> Vec<CubeId> {
        let mut path = vec![from];
        let mut at = from;
        while at != to {
            let next = self.next_hop(at, to);
            assert!(
                !path.contains(&next),
                "route table loops at {at} toward {to}"
            );
            path.push(next);
            at = next;
        }
        path
    }

    /// Number of cube-to-cube link traversals from `from` to `to`.
    pub fn hops(&self, from: CubeId, to: CubeId) -> u32 {
        (self.path(from, to).len() - 1) as u32
    }

    /// Checks the table against a topology's adjacency: every hop must
    /// follow an existing fabric link, every destination must be reached
    /// (totality), and no route may revisit a cube (loop-freedom).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self, topology: Topology) -> Result<(), String> {
        for src in 0..self.n {
            for dst in 0..self.n {
                let (from, to) = (CubeId(src), CubeId(dst));
                let mut at = from;
                let mut visited = vec![false; usize::from(self.n)];
                visited[at.index()] = true;
                while at != to {
                    let next = self.next_hop(at, to);
                    if !topology.neighbors(self.n, at).contains(&next) {
                        return Err(format!(
                            "{at}->{to}: next hop {next} is not a {} neighbor of {at}",
                            topology.label()
                        ));
                    }
                    if visited[next.index()] {
                        return Err(format!("{from}->{to}: route revisits {next}"));
                    }
                    visited[next.index()] = true;
                    at = next;
                }
            }
        }
        Ok(())
    }
}

/// One ring step from `src` toward `dst` on an `n`-ring: shortest
/// direction, clockwise (ascending ids) on the antipodal tie.
fn ring_step(src: u8, dst: u8, n: u8) -> u8 {
    let cw = (i16::from(dst) - i16::from(src)).rem_euclid(i16::from(n));
    let ccw = i16::from(n) - cw;
    if cw <= ccw {
        (src + 1) % n
    } else {
        (src + n - 1) % n
    }
}

/// One step from coordinate `a` toward `b` along a grid dimension of
/// extent `dim`: straight-line on a mesh, ring-style (shortest direction,
/// clockwise tie-break) when the dimension wraps.
fn dim_step(a: u8, b: u8, dim: u8, wrap: bool) -> u8 {
    if wrap {
        ring_step(a, b, dim)
    } else if b > a {
        a + 1
    } else {
        a - 1
    }
}

impl fmt::Display for RouteTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "route table over {} cubes (next hops):", self.n)?;
        for src in 0..self.n {
            write!(f, "  from {src}:")?;
            for dst in 0..self.n {
                write!(f, " {}", self.next_hop(CubeId(src), CubeId(dst)).0)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_routes_walk_the_line() {
        let r = RouteTable::for_topology(Topology::Chain, 5);
        assert_eq!(r.hops(CubeId(0), CubeId(4)), 4);
        assert_eq!(r.hops(CubeId(4), CubeId(0)), 4);
        assert_eq!(r.next_hop(CubeId(2), CubeId(0)), CubeId(1));
        r.validate(Topology::Chain).unwrap();
    }

    #[test]
    fn star_routes_are_at_most_two_hops() {
        let r = RouteTable::for_topology(Topology::Star, 6);
        for a in 0..6 {
            for b in 0..6 {
                let h = r.hops(CubeId(a), CubeId(b));
                let expected = match (a, b) {
                    (x, y) if x == y => 0,
                    (0, _) | (_, 0) => 1,
                    _ => 2,
                };
                assert_eq!(h, expected, "{a}->{b}");
            }
        }
        r.validate(Topology::Star).unwrap();
    }

    #[test]
    fn ring_takes_shortest_direction_clockwise_on_ties() {
        let r = RouteTable::for_topology(Topology::Ring, 6);
        assert_eq!(r.next_hop(CubeId(0), CubeId(1)), CubeId(1));
        assert_eq!(r.next_hop(CubeId(0), CubeId(5)), CubeId(5));
        // Antipodal tie: clockwise.
        assert_eq!(r.next_hop(CubeId(0), CubeId(3)), CubeId(1));
        assert_eq!(r.hops(CubeId(0), CubeId(3)), 3);
        r.validate(Topology::Ring).unwrap();
    }

    #[test]
    fn two_cube_ring_degenerates_to_chain() {
        let r = RouteTable::for_topology(Topology::Ring, 2);
        assert_eq!(r.next_hop(CubeId(0), CubeId(1)), CubeId(1));
        assert_eq!(r.hops(CubeId(1), CubeId(0)), 1);
        r.validate(Topology::Ring).unwrap();
    }

    #[test]
    fn ring_routes_around_a_dead_edge() {
        let r = RouteTable::avoiding(Topology::Ring, 4, &[(0, 1)]).unwrap();
        r.validate(Topology::Ring).unwrap();
        // 0->1 must now go the long way: 0-3-2-1.
        assert_eq!(
            r.path(CubeId(0), CubeId(1)),
            vec![CubeId(0), CubeId(3), CubeId(2), CubeId(1)]
        );
        assert_eq!(r.hops(CubeId(1), CubeId(0)), 3);
        // Routes not touching the dead edge stay shortest.
        assert_eq!(r.hops(CubeId(2), CubeId(3)), 1);
    }

    #[test]
    fn no_dead_edges_matches_plain_bfs_reachability() {
        let r = RouteTable::avoiding(Topology::Chain, 5, &[]).unwrap();
        r.validate(Topology::Chain).unwrap();
        assert_eq!(r.hops(CubeId(0), CubeId(4)), 4);
    }

    #[test]
    fn chain_dead_edge_is_a_loud_error() {
        let err = RouteTable::avoiding(Topology::Chain, 4, &[(1, 2)]).unwrap_err();
        assert!(err.contains("unreachable"), "{err}");
        assert!(err.contains("chain"), "{err}");
        let err = RouteTable::avoiding(Topology::Star, 4, &[(0, 3)]).unwrap_err();
        assert!(err.contains("cube 3"), "{err}");
    }

    #[test]
    fn dead_edge_must_name_a_real_link() {
        let err = RouteTable::avoiding(Topology::Chain, 4, &[(0, 3)]).unwrap_err();
        assert!(err.contains("not a chain fabric link"), "{err}");
        let err = RouteTable::avoiding(Topology::Ring, 4, &[(1, 7)]).unwrap_err();
        assert!(err.contains("outside the fabric"), "{err}");
    }

    #[test]
    fn display_renders_every_row() {
        let r = RouteTable::for_topology(Topology::Chain, 3);
        let s = r.to_string();
        assert!(s.contains("from 0:"));
        assert!(s.contains("from 2:"));
    }

    #[test]
    fn mesh_routes_are_dimension_ordered() {
        // 8×8 mesh: 0 -> 63 corrects X fully (0..7) then climbs Y.
        let r = RouteTable::for_topology(Topology::Mesh2D, 64);
        r.validate(Topology::Mesh2D).unwrap();
        assert_eq!(r.next_hop(CubeId(0), CubeId(63)), CubeId(1));
        assert_eq!(r.next_hop(CubeId(7), CubeId(63)), CubeId(15));
        assert_eq!(r.hops(CubeId(0), CubeId(63)), 14, "mesh diameter");
        // Manhattan distance everywhere: 0 at (0,0), 26 at (2,3).
        assert_eq!(r.hops(CubeId(0), CubeId(26)), 5);
    }

    #[test]
    fn torus_routes_wrap_and_tie_break_clockwise() {
        let r = RouteTable::for_topology(Topology::Torus2D, 64);
        r.validate(Topology::Torus2D).unwrap();
        // (0,0) -> (7,0): one wrap step left beats seven right.
        assert_eq!(r.next_hop(CubeId(0), CubeId(7)), CubeId(7));
        // Antipodal in X (distance 4 both ways): clockwise.
        assert_eq!(r.next_hop(CubeId(0), CubeId(4)), CubeId(1));
        // Full antipodal corner: 4 + 4 hops.
        assert_eq!(r.hops(CubeId(0), CubeId(36)), 8, "torus diameter");
    }

    #[test]
    fn mesh_routes_around_a_dead_edge() {
        // 2×4 mesh of 8: kill the 0-1 edge; 0 -> 1 detours via column 0.
        let r = RouteTable::avoiding(Topology::Mesh2D, 8, &[(0, 1)]).unwrap();
        r.validate(Topology::Mesh2D).unwrap();
        assert_eq!(
            r.path(CubeId(0), CubeId(1)),
            vec![CubeId(0), CubeId(2), CubeId(3), CubeId(1)]
        );
    }

    #[test]
    fn prime_cube_counts_degenerate_to_a_column() {
        let mesh = RouteTable::for_topology(Topology::Mesh2D, 7);
        mesh.validate(Topology::Mesh2D).unwrap();
        assert_eq!(mesh.hops(CubeId(0), CubeId(6)), 6, "1×7 chain");
        let torus = RouteTable::for_topology(Topology::Torus2D, 7);
        torus.validate(Topology::Torus2D).unwrap();
        assert_eq!(torus.hops(CubeId(0), CubeId(6)), 1, "1×7 ring wraps");
    }

    #[test]
    #[should_panic(expected = "at most 64 cubes")]
    fn cub_field_limit_enforced() {
        let _ = RouteTable::for_topology(Topology::Chain, 65);
    }
}
