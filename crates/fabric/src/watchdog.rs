//! A run-progress watchdog for wedged simulations.
//!
//! A conservative-parallel run can only wedge if a worker stops making
//! progress while its siblings spin at the next rendezvous (a bug, or a
//! pathological configuration — the scheduler itself is deadlock-free by
//! construction). The watchdog gives drivers a way out: the domain
//! scheduler registers every run's [`PhaseBarrier`] here and ticks the
//! progress counters each rendezvous round, and a driver arms a
//! [`Deadline`]. If the deadline passes before the driver disarms it,
//! the watchdog [`trip`]s — poisoning every live barrier so workers
//! unwind instead of spinning forever — and runs the driver's callback,
//! which typically prints the progress counters and exits nonzero.
//!
//! Serial runs have no barrier to poison; a tripped watchdog still fires
//! the callback, whose `exit` ends the wedged process all the same.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, LazyLock, Mutex, Weak};
use std::time::{Duration, Instant};

use crate::domain::PhaseBarrier;

/// Rendezvous rounds completed by the lead scheduler group, process-wide.
static ROUNDS: AtomicU64 = AtomicU64::new(0);
/// Lookahead windows granted across those rounds.
static WINDOWS: AtomicU64 = AtomicU64::new(0);

/// The barriers of every live parallel run, plus the fired flag.
pub(crate) struct Registry {
    fired: AtomicBool,
    barriers: Mutex<Vec<Weak<PhaseBarrier>>>,
}

impl Registry {
    pub(crate) fn new() -> Registry {
        Registry {
            fired: AtomicBool::new(false),
            barriers: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn register(&self, barrier: &Arc<PhaseBarrier>) {
        let mut list = self.barriers.lock().unwrap_or_else(|e| e.into_inner());
        list.retain(|w| w.strong_count() > 0);
        list.push(Arc::downgrade(barrier));
    }

    /// Poisons every live registered barrier; returns how many it hit.
    pub(crate) fn trip(&self) -> usize {
        self.fired.store(true, Ordering::Release);
        let list = self.barriers.lock().unwrap_or_else(|e| e.into_inner());
        let mut hit = 0;
        for w in list.iter() {
            if let Some(b) = w.upgrade() {
                b.poison();
                hit += 1;
            }
        }
        hit
    }

    pub(crate) fn fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }
}

static GLOBAL: LazyLock<Arc<Registry>> = LazyLock::new(|| Arc::new(Registry::new()));

/// Registers a parallel run's barrier with the global watchdog.
pub(crate) fn register_barrier(barrier: &Arc<PhaseBarrier>) {
    GLOBAL.register(barrier);
}

/// One rendezvous round completed (lead scheduler group only, so the
/// count is not multiplied by the worker count).
pub(crate) fn note_round() {
    ROUNDS.fetch_add(1, Ordering::Relaxed);
}

/// `n` lookahead windows granted this round.
pub(crate) fn note_windows(n: u64) {
    WINDOWS.fetch_add(n, Ordering::Relaxed);
}

/// `(rounds, windows)` the parallel domain scheduler has completed
/// process-wide — the progress diagnostic a tripped deadline prints.
/// Both stay zero across purely serial runs.
pub fn progress() -> (u64, u64) {
    (
        ROUNDS.load(Ordering::Relaxed),
        WINDOWS.load(Ordering::Relaxed),
    )
}

/// `true` once the global watchdog has tripped.
pub fn fired() -> bool {
    GLOBAL.fired()
}

/// Trips the global watchdog now: poisons every live parallel run's
/// barrier so its workers unwind with an error instead of spinning at a
/// rendezvous that can never complete.
pub fn trip() {
    GLOBAL.trip();
}

/// An armed watchdog deadline. Dropping (or [`Deadline::disarm`]ing) it
/// cancels the timer; if the timeout elapses first, the watchdog trips
/// and the `on_fire` callback runs on the timer thread.
pub struct Deadline {
    signal: Arc<(Mutex<bool>, Condvar)>,
}

impl Deadline {
    /// Arms a deadline against the global watchdog.
    pub fn arm<F>(timeout: Duration, on_fire: F) -> Deadline
    where
        F: FnOnce() + Send + 'static,
    {
        Deadline::arm_on(GLOBAL.clone(), timeout, on_fire)
    }

    pub(crate) fn arm_on<F>(registry: Arc<Registry>, timeout: Duration, on_fire: F) -> Deadline
    where
        F: FnOnce() + Send + 'static,
    {
        let signal = Arc::new((Mutex::new(false), Condvar::new()));
        let timer = signal.clone();
        std::thread::spawn(move || {
            let (lock, cv) = &*timer;
            let end = Instant::now() + timeout;
            let mut disarmed = lock.lock().unwrap_or_else(|e| e.into_inner());
            while !*disarmed {
                let now = Instant::now();
                if now >= end {
                    drop(disarmed);
                    registry.trip();
                    on_fire();
                    return;
                }
                disarmed = cv
                    .wait_timeout(disarmed, end - now)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        });
        Deadline { signal }
    }

    /// Cancels the deadline; the callback will not run.
    pub fn disarm(&self) {
        let (lock, cv) = &*self.signal;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cv.notify_all();
    }
}

impl Drop for Deadline {
    fn drop(&mut self) {
        self.disarm();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::BarrierPoisoned;

    // The tests drive their own Registry rather than the global one: a
    // global trip would poison the barriers of fabric tests running
    // concurrently in this same process.

    #[test]
    fn deadline_trips_a_wedged_scheduler() {
        let registry = Arc::new(Registry::new());
        // A toy wedged run: a 2-party barrier with only one waiter — the
        // other "worker" never arrives, so the wait can only end poisoned.
        let barrier = Arc::new(PhaseBarrier::new(2));
        registry.register(&barrier);
        let fired = Arc::new(AtomicBool::new(false));
        let flag = fired.clone();
        let _deadline = Deadline::arm_on(registry.clone(), Duration::from_millis(20), move || {
            flag.store(true, Ordering::Release);
        });
        let waited = std::thread::scope(|s| s.spawn(|| barrier.wait()).join().unwrap());
        assert_eq!(waited, Err(BarrierPoisoned), "poison must free the waiter");
        assert!(registry.fired());
        // The callback runs on the timer thread; give it a moment.
        for _ in 0..200 {
            if fired.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("on_fire callback never ran");
    }

    #[test]
    fn disarm_prevents_firing() {
        let registry = Arc::new(Registry::new());
        let fired = Arc::new(AtomicBool::new(false));
        let flag = fired.clone();
        let deadline = Deadline::arm_on(registry.clone(), Duration::from_millis(30), move || {
            flag.store(true, Ordering::Release);
        });
        deadline.disarm();
        std::thread::sleep(Duration::from_millis(90));
        assert!(!fired.load(Ordering::Acquire), "disarmed deadline fired");
        assert!(!registry.fired());
    }

    #[test]
    fn registry_drops_dead_barriers() {
        let registry = Registry::new();
        {
            let b = Arc::new(PhaseBarrier::new(1));
            registry.register(&b);
        }
        assert_eq!(registry.trip(), 0, "a finished run's barrier is gone");
    }
}
