//! Fabric configuration: cube identity, topology, per-hop tuning.

use core::fmt;

use hmc_des::Delay;
use hmc_device::DeviceConfig;
use hmc_host::HostConfig;
use hmc_link::{LinkConfig, LinkWidth};
use hmc_packet::RequestKind;

use crate::route::RouteTable;

/// Identifies one cube of a memory network (the HMC header's CUB field,
/// widened here to 6 bits — see `DESIGN_CUB64.md`). Defined in
/// [`hmc_packet`] — it is a header field the host stamps on every
/// request — and re-exported here for fabric users.
pub use hmc_packet::CubeId;

/// How the cubes of a fabric are wired together with their off-chip links.
///
/// Cube 0 is always the host-attached cube. Chain, star and ring mirror
/// the configurations HMC chaining supports in practice: a daisy chain
/// (what the paper's companion study measures), a star with the root as
/// hub, and a ring closing the chain for path redundancy. The 2-D mesh
/// and torus extend past shipped silicon: with the CUB field widened to
/// 6 bits a 64-cube chain has a 63-hop worst case, while an 8×8 mesh
/// caps the diameter at 14 — the constant-degree grids the scale-out
/// study needs (see `DESIGN_CUB64.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// `0 – 1 – 2 – … – n−1`, each cube linked to its neighbors.
    Chain,
    /// Cube 0 linked to every other cube; leaves two hops apart.
    Star,
    /// The chain with an extra `n−1 – 0` link; shortest direction wins.
    Ring,
    /// A `w × h` grid (row-major cube ids, `w` from
    /// [`Topology::grid_dims`]): cube `c` sits at `(c % w, c / w)` and
    /// links to its up/down/left/right neighbors. Dimension-ordered
    /// (X-then-Y) routing.
    Mesh2D,
    /// The mesh with wrap-around links in both dimensions: every cube
    /// has degree 4 and each dimension routes like a ring (shortest
    /// direction, clockwise on ties).
    Torus2D,
}

impl Topology {
    /// A lowercase label for tables and error messages.
    pub fn label(self) -> &'static str {
        match self {
            Topology::Chain => "chain",
            Topology::Star => "star",
            Topology::Ring => "ring",
            Topology::Mesh2D => "mesh",
            Topology::Torus2D => "torus",
        }
    }

    /// The `(width, height)` of the grid an `n`-cube mesh or torus is
    /// laid out on: the most-square factorization with `width <= height`
    /// (64 → 8×8, 32 → 4×8, 8 → 2×4). A prime `n` degenerates to a
    /// `1 × n` column — a chain (mesh) or ring (torus).
    pub fn grid_dims(n: u8) -> (u8, u8) {
        assert!(n >= 1, "a grid needs at least one cube");
        let w = (1..=n)
            .filter(|&w| n.is_multiple_of(w) && u16::from(w) * u16::from(w) <= u16::from(n))
            .max()
            .expect("1 always divides n");
        (w, n / w)
    }

    /// The fabric neighbors of `cube` in an `n`-cube instance, ascending.
    pub fn neighbors(self, n: u8, cube: CubeId) -> Vec<CubeId> {
        let c = cube.0;
        assert!(c < n, "cube {c} out of range for {n}-cube fabric");
        if n == 1 {
            return Vec::new();
        }
        let mut out = match self {
            Topology::Chain => {
                let mut v = Vec::new();
                if c > 0 {
                    v.push(c - 1);
                }
                if c + 1 < n {
                    v.push(c + 1);
                }
                v
            }
            Topology::Star => {
                if c == 0 {
                    (1..n).collect()
                } else {
                    vec![0]
                }
            }
            Topology::Ring => {
                vec![(c + n - 1) % n, (c + 1) % n]
            }
            Topology::Mesh2D | Topology::Torus2D => {
                let (w, h) = Topology::grid_dims(n);
                let wrap = self == Topology::Torus2D;
                let (x, y) = (c % w, c / w);
                let mut v = Vec::with_capacity(4);
                if w > 1 {
                    if x > 0 {
                        v.push(y * w + (x - 1));
                    } else if wrap {
                        v.push(y * w + (w - 1));
                    }
                    if x + 1 < w {
                        v.push(y * w + (x + 1));
                    } else if wrap {
                        v.push(y * w);
                    }
                }
                if h > 1 {
                    if y > 0 {
                        v.push((y - 1) * w + x);
                    } else if wrap {
                        v.push((h - 1) * w + x);
                    }
                    if y + 1 < h {
                        v.push((y + 1) * w + x);
                    } else if wrap {
                        v.push(x);
                    }
                }
                v
            }
        };
        out.sort_unstable();
        // Wrap-around in a 2-wide dimension reaches the same neighbor
        // twice (ring of two, torus column of two).
        out.dedup();
        out.into_iter().map(CubeId).collect()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Timing and buffering of one fabric hop: the pass-through crossbar in a
/// transit cube's link layer plus the cube-to-cube serialized link.
///
/// The derivation mirrors the single-cube model: the crossbar reuses the
/// quadrant-switch datapath numbers (the pass-through shares the logic
/// layer's NoC fabric, which is exactly why transit traffic contends with
/// local traffic — the paper's central mechanism), and the link reuses the
/// external [`LinkConfig`] serialization model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopTuning {
    /// Cube-to-cube link: serialization rate, protocol overhead, SerDes
    /// latency. `input_buffer_flits` is overridden per edge by the
    /// receiving cube's pass-through input buffer.
    pub link: LinkConfig,
    /// Pipeline latency of one pass-through crossbar traversal.
    pub passthrough_latency: Delay,
    /// Serialization time per flit on the pass-through datapath.
    pub flit_time: Delay,
    /// Pass-through input buffer per port, in flits — the token pool each
    /// upstream serializer is credited with.
    pub input_capacity_flits: u32,
    /// Egress budget between the crossbar and each outbound serializer,
    /// in flits.
    pub egress_capacity_flits: u32,
}

impl HopTuning {
    /// Derives hop tuning from a cube configuration: the fabric link is a
    /// full-width version of the cube's external link, the pass-through
    /// datapath matches the cube's switch tuning, and the pass-through
    /// inputs are link-RX-buffer sized — they *are* link RX buffers, and
    /// the token loop closes over a 55 ns SerDes flight, so shallow
    /// (switch-sized) buffers would cap a hop at a fraction of wire rate.
    pub fn derive(cube: &DeviceConfig) -> HopTuning {
        HopTuning {
            link: LinkConfig {
                width: LinkWidth::Full,
                min_packet_time: Delay::ZERO,
                ..cube.link
            },
            passthrough_latency: cube.switch.hop_latency,
            flit_time: cube.switch.flit_time,
            input_capacity_flits: cube.link.input_buffer_flits,
            egress_capacity_flits: cube.switch.link_egress_flits,
        }
    }

    /// Validates the tuning.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.link.validate()?;
        if self.flit_time.is_zero() {
            return Err("pass-through flit time must be positive".to_owned());
        }
        if self.input_capacity_flits < 9 {
            return Err("pass-through inputs must hold one max-size packet".to_owned());
        }
        if self.egress_capacity_flits < 9 {
            return Err("pass-through egress must hold one max-size packet".to_owned());
        }
        Ok(())
    }
}

/// Configuration of a multi-cube memory network behind one host.
///
/// All cubes are identical instances of `cube`; cube 0 carries the host
/// links. With `cube_count == 1` the fabric collapses to the single-cube
/// system of the reproduced paper (no pass-through stage at all).
///
/// # Examples
///
/// ```
/// use hmc_fabric::{FabricConfig, Topology};
///
/// let cfg = FabricConfig::chain(7, 4);
/// assert_eq!(cfg.cube_count, 4);
/// cfg.validate().expect("chain of 4 is valid");
/// assert_eq!(cfg.routes().hops(hmc_fabric::CubeId(0), hmc_fabric::CubeId(3)), 3);
/// ```
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Per-cube device configuration (all cubes identical).
    pub cube: DeviceConfig,
    /// Number of cubes (1 to [`FabricConfig::MAX_CUBES`]).
    pub cube_count: u8,
    /// How the cubes are wired.
    pub topology: Topology,
    /// The host attached to cube 0.
    pub host: HostConfig,
    /// Root seed for all randomness.
    pub seed: u64,
    /// Per-hop pass-through and link tuning.
    pub hop: HopTuning,
}

impl FabricConfig {
    /// The widened 6-bit CUB field addresses at most 64 cubes per fabric
    /// (see `DESIGN_CUB64.md`). Derived from [`CubeId::MAX_CUBES`], the
    /// canonical bound.
    pub const MAX_CUBES: u8 = CubeId::MAX_CUBES as u8;

    /// A single-cube fabric — the paper's AC-510 system.
    pub fn single(cube: DeviceConfig, host: HostConfig, seed: u64) -> FabricConfig {
        let hop = HopTuning::derive(&cube);
        FabricConfig {
            cube,
            cube_count: 1,
            topology: Topology::Chain,
            host,
            seed,
            hop,
        }
    }

    /// An `n`-cube fabric of AC-510-class cubes in the given topology.
    pub fn ac510(topology: Topology, cube_count: u8, seed: u64) -> FabricConfig {
        let cube = DeviceConfig::ac510_hmc();
        let hop = HopTuning::derive(&cube);
        FabricConfig {
            cube,
            cube_count,
            topology,
            host: HostConfig::ac510_default(),
            seed,
            hop,
        }
    }

    /// An `n`-cube daisy chain of AC-510-class cubes.
    pub fn chain(seed: u64, cube_count: u8) -> FabricConfig {
        FabricConfig::ac510(Topology::Chain, cube_count, seed)
    }

    /// An `n`-cube star with cube 0 as the host-attached hub.
    pub fn star(seed: u64, cube_count: u8) -> FabricConfig {
        FabricConfig::ac510(Topology::Star, cube_count, seed)
    }

    /// An `n`-cube ring.
    pub fn ring(seed: u64, cube_count: u8) -> FabricConfig {
        FabricConfig::ac510(Topology::Ring, cube_count, seed)
    }

    /// An `n`-cube 2-D mesh (grid shape from [`Topology::grid_dims`]).
    pub fn mesh(seed: u64, cube_count: u8) -> FabricConfig {
        FabricConfig::ac510(Topology::Mesh2D, cube_count, seed)
    }

    /// An `n`-cube 2-D torus.
    pub fn torus(seed: u64, cube_count: u8) -> FabricConfig {
        FabricConfig::ac510(Topology::Torus2D, cube_count, seed)
    }

    /// The source-routing table for this fabric.
    pub fn routes(&self) -> RouteTable {
        RouteTable::for_topology(self.topology, self.cube_count)
    }

    /// The conservative-parallelism lookahead of one fabric edge: the
    /// minimum latency any cube-to-cube message pays crossing it. Both
    /// packet deliveries and link-token returns ride the cube-to-cube
    /// SerDes, so this is the hop link's SerDes latency. The domain
    /// scheduler ([`FabricSim::with_domains`](crate::FabricSim::with_domains))
    /// lets a domain run this far past its neighbors' earliest pending
    /// events per fabric hop of separation; a zero lookahead (degenerate
    /// tunings only) forces serial execution.
    pub fn lookahead(&self) -> Delay {
        self.hop.link.serdes_latency
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.cube.validate()?;
        self.host.validate()?;
        self.hop.validate()?;
        if self.cube_count == 0 {
            return Err("a fabric needs at least one cube".to_owned());
        }
        if self.cube_count > FabricConfig::MAX_CUBES {
            return Err("the 6-bit CUB field addresses at most 64 cubes".to_owned());
        }
        if usize::from(self.host.link_count) != self.cube.link_count() {
            return Err("host and cube must agree on link count".to_owned());
        }
        // The crossbar's egress dirty mask is one u64: every cube's port
        // count (device links + fabric links + host links on cube 0) must
        // fit. Only high-degree hubs can violate this — a star past ~60
        // cubes; the constant-degree grids never do.
        for c in CubeId::all(self.cube_count) {
            let ports = self.cube.link_count()
                + self.topology.neighbors(self.cube_count, c).len()
                + if c == CubeId::HOST {
                    usize::from(self.host.link_count)
                } else {
                    0
                };
            if ports > 64 {
                return Err(format!(
                    "{c}'s crossbar needs {ports} ports, above the 64-port \
                     ceiling — use a constant-degree topology (mesh/torus) \
                     for fabrics this large"
                ));
            }
        }
        self.routes().validate(self.topology)?;
        Ok(())
    }

    /// The extra unloaded round-trip latency one additional fabric hop
    /// adds to a request of the given kind: one pass-through crossbar
    /// traversal and one cube-to-cube link flight in each direction.
    pub fn unloaded_hop_delay(&self, kind: RequestKind) -> Delay {
        let req = kind.request_flits();
        let resp = kind.response_flits();
        let crossbar = self.hop.passthrough_latency * 2u32
            + self.hop.flit_time * req
            + self.hop.flit_time * resp;
        let wire = self.hop.link.packet_time(req)
            + self.hop.link.packet_time(resp)
            + self.hop.link.serdes_latency * 2u32;
        crossbar + wire
    }
}

impl Default for FabricConfig {
    fn default() -> FabricConfig {
        FabricConfig::single(DeviceConfig::ac510_hmc(), HostConfig::ac510_default(), 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_packet::PayloadSize;

    #[test]
    fn defaults_validate_across_topologies() {
        for t in [
            Topology::Chain,
            Topology::Star,
            Topology::Ring,
            Topology::Mesh2D,
            Topology::Torus2D,
        ] {
            for n in 1..=8 {
                FabricConfig::ac510(t, n, 0).validate().unwrap_or_else(|e| {
                    panic!("{} of {n}: {e}", t.label());
                });
            }
        }
        // The widened CUB field: every non-hub topology validates at 64.
        for t in [
            Topology::Chain,
            Topology::Ring,
            Topology::Mesh2D,
            Topology::Torus2D,
        ] {
            FabricConfig::ac510(t, 64, 0)
                .validate()
                .unwrap_or_else(|e| {
                    panic!("{} of 64: {e}", t.label());
                });
        }
    }

    #[test]
    fn validation_rejects_degenerate_fabrics() {
        let mut cfg = FabricConfig::chain(0, 2);
        cfg.cube_count = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = FabricConfig::chain(0, 2);
        cfg.cube_count = 65;
        assert!(cfg.validate().is_err());
        let mut cfg = FabricConfig::chain(0, 2);
        cfg.hop.input_capacity_flits = 2;
        assert!(cfg.validate().is_err());
        let mut cfg = FabricConfig::chain(0, 2);
        cfg.host.link_count = 1;
        assert!(cfg.validate().is_err());
        // A 64-cube star hub would need 63 fabric ports plus its device
        // and host links — past the 64-port crossbar ceiling.
        let err = FabricConfig::star(0, 64).validate().unwrap_err();
        assert!(err.contains("crossbar"), "{err}");
        FabricConfig::star(0, 32).validate().unwrap();
    }

    #[test]
    fn grid_dims_pick_the_most_square_factorization() {
        assert_eq!(Topology::grid_dims(64), (8, 8));
        assert_eq!(Topology::grid_dims(32), (4, 8));
        assert_eq!(Topology::grid_dims(16), (4, 4));
        assert_eq!(Topology::grid_dims(8), (2, 4));
        assert_eq!(Topology::grid_dims(12), (3, 4));
        assert_eq!(Topology::grid_dims(7), (1, 7), "prime degenerates");
        assert_eq!(Topology::grid_dims(1), (1, 1));
    }

    #[test]
    fn neighbors_match_topology_shape() {
        let n = 5;
        assert_eq!(
            Topology::Chain.neighbors(n, CubeId(2)),
            vec![CubeId(1), CubeId(3)]
        );
        assert_eq!(Topology::Chain.neighbors(n, CubeId(0)), vec![CubeId(1)]);
        assert_eq!(
            Topology::Star.neighbors(n, CubeId(0)),
            (1..5).map(CubeId).collect::<Vec<_>>()
        );
        assert_eq!(Topology::Star.neighbors(n, CubeId(3)), vec![CubeId(0)]);
        assert_eq!(
            Topology::Ring.neighbors(n, CubeId(0)),
            vec![CubeId(1), CubeId(4)]
        );
        assert_eq!(Topology::Ring.neighbors(2, CubeId(0)), vec![CubeId(1)]);
        // 2×4 mesh of 8: cube 2 sits at (0, 1) — left column, row 1.
        assert_eq!(
            Topology::Mesh2D.neighbors(8, CubeId(2)),
            vec![CubeId(0), CubeId(3), CubeId(4)]
        );
        // Torus wraps both dimensions; the 2-wide x dimension dedups.
        assert_eq!(
            Topology::Torus2D.neighbors(8, CubeId(2)),
            vec![CubeId(0), CubeId(3), CubeId(4)]
        );
        // 8×8 torus: interior degree 4 with wraps for the corner.
        assert_eq!(
            Topology::Torus2D.neighbors(64, CubeId(0)),
            vec![CubeId(1), CubeId(7), CubeId(8), CubeId(56)]
        );
        assert_eq!(
            Topology::Mesh2D.neighbors(64, CubeId(0)),
            vec![CubeId(1), CubeId(8)]
        );
    }

    #[test]
    fn hop_delay_is_positive_and_grows_with_size() {
        let cfg = FabricConfig::chain(0, 2);
        let small = cfg.unloaded_hop_delay(RequestKind::Read {
            size: PayloadSize::B16,
        });
        let large = cfg.unloaded_hop_delay(RequestKind::Read {
            size: PayloadSize::B128,
        });
        assert!(!small.is_zero());
        assert!(large > small, "more flits, more serialization per hop");
        // Two SerDes flights dominate: at least 110 ns per hop.
        assert!(small >= Delay::from_ns(110));
    }
}
