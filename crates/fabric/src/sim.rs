//! The fabric simulation: host, cubes and pass-through stages wired onto
//! the deterministic event engine.
//!
//! A [`FabricSim`] generalizes the single-cube measurement system to a
//! memory network. Cube 0 carries the host links; every other cube is
//! reached through HMC-style source routing: the host stamps each request
//! with its destination cube and the link layer of every transit cube
//! forwards it through a pass-through crossbar ([`hmc_noc::SwitchCore`])
//! onto the next cube-to-cube link. Responses retrace the route. Because
//! the pass-through crossbar is a real arbitrated switch with finite
//! buffers and credits, transit traffic contends with traffic terminating
//! at the cube — the multi-cube extension of the paper's central claim
//! that the NoC, not the DRAM, governs loaded latency.
//!
//! With `cube_count == 1` the component graph is exactly the single-cube
//! system (host wired straight to the device, no pass-through stage), so
//! single-cube results are unchanged by the fabric machinery.

use hmc_des::{AutoWake, Component, ComponentId, Ctx, Delay, Engine, EngineStats, Time, WakeToken};
use hmc_device::{DeviceConfig, DeviceOutput, HmcDevice};
use hmc_host::{HostConfig, HostEvent, HostEvents, HostModel, Port};
use hmc_link::{Deliveries, LinkConfig, LinkTx, LinkWidth};
use hmc_mapping::CubeTargeting;
use hmc_noc::{Departures, SwitchConfig, SwitchCore, SwitchEntry};
use hmc_packet::{LinkId, PortId, RequestPacket, ResponsePacket};
use hmc_telemetry::{LinkDir, Probe, Stage};
use hmc_workloads::{source_factory, GupsSource, SourceFactory, TraceReplay, TrafficSource};

use crate::config::{CubeId, FabricConfig};
use crate::report::{CubeReport, PortReport, RunReport, TransitStats};
use crate::route::RouteTable;

/// Default GUPS tag-pool size: 64 tags per port. Nine ports give the 576
/// maximum outstanding requests consistent with the paper's Figure 14
/// (≈535 measured for 4-bank patterns, just under the tag ceiling).
pub const GUPS_TAGS: u16 = 64;

/// Default stream tag-pool size: 80 tags per port, matching the Figure 8
/// saturation knee (the paper's latency stops growing near 100 in-flight
/// requests).
pub const STREAM_TAGS: u16 = 80;

/// Specification of one traffic port of a fabric system.
///
/// The spec carries a [`SourceFactory`] rather than a built source so that
/// one spec can be cloned across ports (`vec![spec; 9]`) while each port's
/// source is still built with its own deterministically derived seed.
#[derive(Clone)]
pub struct FabricPortSpec {
    /// Builds the port's traffic source from the port's derived seed.
    pub source: SourceFactory,
    /// Tag-pool size (maximum outstanding requests).
    pub tags: u16,
    /// How the host derives the CUB field for this port's requests: a
    /// statically configured cube (the degenerate single-cube map — the
    /// pre-fabric behavior), or a per-request split of the workload's
    /// global address under a
    /// [`FabricAddressMap`](hmc_mapping::FabricAddressMap).
    pub targeting: CubeTargeting,
}

impl std::fmt::Debug for FabricPortSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FabricPortSpec")
            .field("tags", &self.tags)
            .field("targeting", &self.targeting)
            .finish_non_exhaustive()
    }
}

impl FabricPortSpec {
    /// A GUPS port with the default tag pool, targeting `cube`.
    pub fn gups(
        filter: hmc_mapping::AddressFilter,
        op: hmc_workloads::GupsOp,
        cube: CubeId,
    ) -> FabricPortSpec {
        FabricPortSpec {
            source: source_factory(move |seed| Box::new(GupsSource::new(filter, op, seed))),
            tags: GUPS_TAGS,
            targeting: CubeTargeting::Fixed(cube),
        }
    }

    /// A stream port with the default tag pool, targeting `cube`.
    pub fn stream(trace: hmc_workloads::Trace, cube: CubeId) -> FabricPortSpec {
        FabricPortSpec {
            source: source_factory(move |_seed| Box::new(TraceReplay::new(trace.clone()))),
            tags: STREAM_TAGS,
            targeting: CubeTargeting::Fixed(cube),
        }
    }

    /// A port over any traffic source, targeting `cube`, with the default
    /// stream tag pool. The factory receives the port's derived seed.
    pub fn from_source<F>(factory: F, cube: CubeId) -> FabricPortSpec
    where
        F: Fn(u64) -> Box<dyn TrafficSource> + Send + Sync + 'static,
    {
        FabricPortSpec {
            source: source_factory(factory),
            tags: STREAM_TAGS,
            targeting: CubeTargeting::Fixed(cube),
        }
    }

    /// Overrides the tag-pool size.
    pub fn with_tags(mut self, tags: u16) -> FabricPortSpec {
        self.tags = tags;
        self
    }

    /// Replaces this port's targeting: the CUB field of each request is
    /// derived from the workload's global address instead of a static
    /// cube. The map must span exactly the fabric's cube count.
    pub fn addressed(mut self, map: hmc_mapping::FabricAddressMap) -> FabricPortSpec {
        self.targeting = CubeTargeting::Addressed(map);
        self
    }
}

/// A packet in flight on the fabric, stamped with its source route anchors:
/// the destination cube (requests) and the host link affinity that carries
/// it back out (responses exit the fabric on the host link the request
/// entered on).
#[derive(Debug, Clone, Copy)]
struct TransitMsg {
    /// Destination cube of a request; responses always head for cube 0.
    dest: CubeId,
    /// The host link the transaction entered on; doubles as the device
    /// link used at the destination cube.
    host_link: LinkId,
    body: TransitBody,
}

#[derive(Debug, Clone, Copy)]
enum TransitBody {
    Req(RequestPacket),
    Resp(ResponsePacket),
}

impl TransitMsg {
    fn flits(&self) -> u32 {
        match &self.body {
            TransitBody::Req(pkt) => pkt.flits(),
            TransitBody::Resp(pkt) => pkt.flits(),
        }
    }

    /// The `(port, tag)` transaction identity telemetry traces by.
    fn identity(&self) -> (u16, u16) {
        match &self.body {
            TransitBody::Req(pkt) => (u16::from(pkt.port.0), pkt.tag.0),
            TransitBody::Resp(pkt) => (u16::from(pkt.port.0), pkt.tag.0),
        }
    }
}

/// Messages exchanged between the components. Periodic work (host FPGA
/// cycles, deferred crossbar service, internal device timers) is *not*
/// message-driven: each component arms an engine timer at its model's
/// `next_wake` instant and sleeps in between, so no component ticks while
/// idle.
enum Msg {
    /// Kick-start the host's tick timer (sent once at the beginning of a
    /// run; every subsequent cycle is a timer wakeup the host re-arms
    /// itself, skipping idle stretches).
    HostKick,
    /// Deactivate GUPS ports and freeze monitors (end of measurement).
    HostStop,
    /// Clear monitors (end of warmup).
    HostResetStats,
    /// A response fully arrived at the host on `link`.
    HostResponse { link: LinkId, pkt: ResponsePacket },
    /// A response finished draining to its port.
    PortDeliver { pkt: ResponsePacket },
    /// Request-direction tokens freed toward the host's transmitter.
    ReturnRequestTokens { link: LinkId, flits: u32 },
    /// A request fully arrived at a device on `link`.
    DeviceRequest { link: LinkId, pkt: RequestPacket },
    /// The downstream receiver freed response-direction buffer space.
    ReturnResponseTokens { link: LinkId, flits: u32 },
    /// A packet fully arrived at a pass-through stage on `input`.
    AdapterArrive { input: usize, msg: TransitMsg },
    /// A packet cleared the crossbar and enters the egress serializer
    /// behind `port`.
    AdapterEgress { port: usize, msg: TransitMsg },
    /// Downstream credits freed for a crossbar output.
    AdapterCredits { output: usize, flits: u32 },
    /// Link tokens returned to the serializer behind `port`.
    AdapterLinkTokens { port: usize, flits: u32 },
}

/// How a run terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunMode {
    /// GUPS ports tick until the stop time, then drain.
    GupsUntil(Time),
    /// Stream ports tick until every trace is issued and answered.
    Stream,
}

/// Where the host's request traffic goes.
enum Downstream {
    /// Single cube: straight into the device, as in the paper's system.
    Direct { device: ComponentId },
    /// Multi-cube: into cube 0's pass-through stage. The destination cube
    /// is read off each packet's CUB field — the host's port logic
    /// stamped it when it split the workload's address.
    Fabric {
        adapter: ComponentId,
        /// Index of the first host-facing port on cube 0's crossbar.
        host_port_base: usize,
    },
}

struct HostComp {
    model: HostModel,
    down: Option<Downstream>,
    mode: RunMode,
    period: Delay,
    /// The tick timer: armed at the model's next interesting FPGA cycle,
    /// disarmed while the host is idle.
    tick: AutoWake,
    measure_start: Time,
    measure_end: Option<Time>,
    /// Telemetry probe; its epoch window re-anchors when monitors reset.
    probe: Probe,
}

impl HostComp {
    /// Relays a view of the host model's reused event buffer. An
    /// associated function over the `down` field (not `&self`) so callers
    /// can hold the model borrowed while relaying — the zero-copy,
    /// zero-allocation path from model to engine.
    fn relay(down: &Option<Downstream>, events: &HostEvents, ctx: &mut Ctx<'_, Msg>) {
        let down = down.as_ref().expect("host wired before first message");
        let me = ctx.self_id();
        for ev in events.iter() {
            match *ev {
                HostEvent::RequestArrival { link, pkt, at } => match down {
                    Downstream::Direct { device } => {
                        ctx.send_at(at, *device, Msg::DeviceRequest { link, pkt });
                    }
                    Downstream::Fabric {
                        adapter,
                        host_port_base,
                    } => {
                        let msg = TransitMsg {
                            dest: pkt.cube,
                            host_link: link,
                            body: TransitBody::Req(pkt),
                        };
                        let input = host_port_base + link.index();
                        ctx.send_at(at, *adapter, Msg::AdapterArrive { input, msg });
                    }
                },
                HostEvent::ResponseDrained { pkt, at, .. } => {
                    ctx.send_at(at, me, Msg::PortDeliver { pkt });
                }
                HostEvent::ResponseTokens { link, flits, at } => match down {
                    Downstream::Direct { device } => {
                        ctx.send_at(at, *device, Msg::ReturnResponseTokens { link, flits });
                    }
                    Downstream::Fabric {
                        adapter,
                        host_port_base,
                        ..
                    } => {
                        let port = host_port_base + link.index();
                        ctx.send_at(at, *adapter, Msg::AdapterLinkTokens { port, flits });
                    }
                },
            }
        }
    }

    fn should_tick_at(&self, at: Time) -> bool {
        match self.mode {
            RunMode::GupsUntil(stop) => at < stop,
            RunMode::Stream => !self.model.all_done(),
        }
    }

    /// One host FPGA cycle, then re-arm for the next interesting one.
    fn do_tick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let events = self.model.tick(ctx.now());
        Self::relay(&self.down, events, ctx);
        self.arm_tick(ctx, true);
    }

    /// Moves the tick timer to the model's next interesting instant:
    /// `HostModel::next_wake` snapped forward past the cycle just run (so
    /// a tick never re-fires at its own timestamp) and gated by the run
    /// mode. With no interesting instant the timer is cancelled — the
    /// idle-skip at the heart of the event-driven core.
    fn arm_tick(&mut self, ctx: &mut Ctx<'_, Msg>, just_ticked: bool) {
        let now = ctx.now();
        let at = match self.model.next_wake(now) {
            Some(t) if just_ticked => t.max(now + self.period),
            Some(t) => t,
            None => {
                self.tick.set(ctx, None);
                return;
            }
        };
        let want = self.should_tick_at(at).then_some(at);
        self.tick.set(ctx, want);
    }
}

impl Component<Msg> for HostComp {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::HostKick => self.do_tick(ctx),
            Msg::HostStop => {
                self.model.set_all_active(false);
                self.model.freeze_stats();
                self.measure_end = Some(ctx.now());
                self.arm_tick(ctx, false);
            }
            Msg::HostResetStats => {
                self.model.reset_stats();
                self.measure_start = ctx.now();
                self.probe.reset_window(ctx.now());
            }
            Msg::HostResponse { link, pkt } => {
                let events = self.model.on_response_arrival(ctx.now(), link, pkt);
                Self::relay(&self.down, events, ctx);
            }
            Msg::PortDeliver { pkt } => {
                self.model.deliver_response(ctx.now(), &pkt);
                self.arm_tick(ctx, false);
            }
            Msg::ReturnRequestTokens { link, flits } => {
                let events = self.model.on_request_tokens(ctx.now(), link, flits);
                Self::relay(&self.down, events, ctx);
                self.arm_tick(ctx, false);
            }
            _ => unreachable!("message addressed elsewhere reached the host"),
        }
    }

    fn on_wake(&mut self, token: WakeToken, ctx: &mut Ctx<'_, Msg>) {
        if self.tick.fired(token) {
            self.do_tick(ctx);
        }
    }

    fn name(&self) -> &str {
        "host"
    }
}

/// Where a device's upstream traffic (responses, freed tokens) goes.
enum Upstream {
    /// Single cube: straight back to the host.
    Host(ComponentId),
    /// Multi-cube: into the cube's own pass-through stage; device link
    /// `l` feeds crossbar input `l` (device ports come first).
    Adapter(ComponentId),
}

struct DeviceComp {
    device: HmcDevice,
    up: Upstream,
    /// Armed at the device's next internal deadline (bank timers, switch
    /// busy intervals); disarmed while the device is drained.
    wake: AutoWake,
}

impl DeviceComp {
    /// Advances the device to `now`, relays its outputs, and re-arms the
    /// timer at the next internal deadline.
    fn service(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now();
        for out in self.device.advance(now) {
            match *out {
                DeviceOutput::Response { link, pkt, at } => match self.up {
                    Upstream::Host(host) => {
                        ctx.send_at(at, host, Msg::HostResponse { link, pkt });
                    }
                    Upstream::Adapter(adapter) => {
                        let msg = TransitMsg {
                            dest: CubeId::HOST,
                            host_link: link,
                            body: TransitBody::Resp(pkt),
                        };
                        ctx.send_at(
                            at,
                            adapter,
                            Msg::AdapterArrive {
                                input: link.index(),
                                msg,
                            },
                        );
                    }
                },
                DeviceOutput::RequestTokens { link, flits } => match self.up {
                    Upstream::Host(host) => {
                        ctx.send(Delay::ZERO, host, Msg::ReturnRequestTokens { link, flits });
                    }
                    Upstream::Adapter(adapter) => {
                        ctx.send(
                            Delay::ZERO,
                            adapter,
                            Msg::AdapterCredits {
                                output: link.index(),
                                flits,
                            },
                        );
                    }
                },
            }
        }
        let next = self.device.next_wake();
        debug_assert!(next.is_none_or(|t| t >= now), "device wake in the past");
        self.wake.set(ctx, next);
    }
}

impl Component<Msg> for DeviceComp {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now();
        match msg {
            Msg::DeviceRequest { link, pkt } => self.device.on_request(now, link, pkt),
            Msg::ReturnResponseTokens { link, flits } => {
                self.device.return_response_tokens(link, flits);
            }
            _ => unreachable!("message addressed elsewhere reached a device"),
        }
        self.service(ctx);
    }

    fn on_wake(&mut self, token: WakeToken, ctx: &mut Ctx<'_, Msg>) {
        if self.wake.fired(token) {
            self.service(ctx);
        }
    }

    fn name(&self) -> &str {
        "device"
    }
}

/// Port layout of one cube's pass-through crossbar:
/// `[device links, fabric links (by ascending neighbor id), host links]`,
/// host links existing only on cube 0.
#[derive(Debug, Clone)]
struct AdapterLayout {
    dev_links: usize,
    neighbors: Vec<CubeId>,
    host_links: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PortClass {
    /// Local device link `l`.
    Dev(usize),
    /// Fabric link slot `i` (toward `neighbors[i]`).
    Fabric(usize),
    /// Host link `l` (cube 0 only).
    Host(usize),
}

impl AdapterLayout {
    fn count(&self) -> usize {
        self.dev_links + self.neighbors.len() + self.host_links
    }

    fn dev_port(&self, link: LinkId) -> usize {
        link.index()
    }

    fn fabric_port(&self, slot: usize) -> usize {
        self.dev_links + slot
    }

    fn host_port(&self, link: LinkId) -> usize {
        self.dev_links + self.neighbors.len() + link.index()
    }

    fn classify(&self, port: usize) -> PortClass {
        if port < self.dev_links {
            PortClass::Dev(port)
        } else if port < self.dev_links + self.neighbors.len() {
            PortClass::Fabric(port - self.dev_links)
        } else {
            PortClass::Host(port - self.dev_links - self.neighbors.len())
        }
    }

    /// The fabric port whose link leads to `cube`.
    fn port_toward(&self, cube: CubeId) -> usize {
        let slot = self
            .neighbors
            .iter()
            .position(|&n| n == cube)
            .unwrap_or_else(|| panic!("no fabric link toward {cube}"));
        self.fabric_port(slot)
    }
}

/// The far end of one fabric edge.
#[derive(Debug, Clone, Copy)]
struct FabricEdge {
    /// The neighboring cube's pass-through component.
    peer: ComponentId,
    /// The crossbar input port on the peer that this edge's serializer
    /// delivers into (and whose drain returns our link tokens).
    peer_port: usize,
}

/// One cube's pass-through stage: the link-layer crossbar that joins the
/// local device, the cube-to-cube links and (on cube 0) the host links.
struct AdapterComp {
    cube: CubeId,
    layout: AdapterLayout,
    routes: RouteTable,
    sw: SwitchCore<TransitMsg>,
    /// Egress serializer behind each fabric/host port (`None` on device
    /// ports, whose receiver is the device's own link input buffer).
    tx: Vec<Option<LinkTx<TransitMsg>>>,
    /// Fabric edge wiring per port (`None` on non-fabric ports).
    edges: Vec<Option<FabricEdge>>,
    device: ComponentId,
    host: ComponentId,
    /// Armed at the crossbar's next output-free instant; disarmed while
    /// every queued head waits on credits (the credit return notifies).
    wake: AutoWake,
    /// Reused departure scratch for crossbar service.
    dep_scratch: Departures<TransitMsg>,
    /// Reused delivery scratch for egress serializer service.
    del_scratch: Deliveries<TransitMsg>,
    /// Telemetry probe (detached by default).
    probe: Probe,
}

impl AdapterComp {
    fn route_output(&self, msg: &TransitMsg) -> usize {
        match msg.body {
            TransitBody::Req(_) => {
                if msg.dest == self.cube {
                    self.layout.dev_port(msg.host_link)
                } else {
                    self.layout
                        .port_toward(self.routes.next_hop(self.cube, msg.dest))
                }
            }
            TransitBody::Resp(_) => {
                if self.cube == CubeId::HOST {
                    self.layout.host_port(msg.host_link)
                } else {
                    self.layout
                        .port_toward(self.routes.next_hop(self.cube, CubeId::HOST))
                }
            }
        }
    }

    fn pump(&mut self, now: Time, ctx: &mut Ctx<'_, Msg>) {
        let me = ctx.self_id();
        let mut deps = std::mem::take(&mut self.dep_scratch);
        let mut dels = std::mem::take(&mut self.del_scratch);
        loop {
            let mut progress = false;
            self.sw.service_into(now, &mut deps);
            for d in deps.drain() {
                progress = true;
                let (t_port, t_tag) = d.payload.identity();
                self.probe.trace_mark(t_port, t_tag, Stage::Transit, d.at);
                // Input drained: return the space to whoever serialized
                // into it.
                match self.layout.classify(d.input) {
                    PortClass::Dev(l) => {
                        ctx.send(
                            Delay::ZERO,
                            self.device,
                            Msg::ReturnResponseTokens {
                                link: LinkId(l as u8),
                                flits: d.flits,
                            },
                        );
                    }
                    PortClass::Fabric(slot) => {
                        let edge = self.edges[self.layout.fabric_port(slot)]
                            .expect("fabric port has an edge");
                        ctx.send(
                            Delay::ZERO,
                            edge.peer,
                            Msg::AdapterLinkTokens {
                                port: edge.peer_port,
                                flits: d.flits,
                            },
                        );
                    }
                    PortClass::Host(l) => {
                        ctx.send(
                            Delay::ZERO,
                            self.host,
                            Msg::ReturnRequestTokens {
                                link: LinkId(l as u8),
                                flits: d.flits,
                            },
                        );
                    }
                }
                // Forward out of the crossbar.
                match self.layout.classify(d.output) {
                    PortClass::Dev(l) => {
                        let TransitBody::Req(pkt) = d.payload.body else {
                            unreachable!("responses never route to the local device")
                        };
                        ctx.send_at(
                            d.at,
                            self.device,
                            Msg::DeviceRequest {
                                link: LinkId(l as u8),
                                pkt,
                            },
                        );
                    }
                    PortClass::Fabric(_) | PortClass::Host(_) => {
                        ctx.send_at(
                            d.at,
                            me,
                            Msg::AdapterEgress {
                                port: d.output,
                                msg: d.payload,
                            },
                        );
                    }
                }
            }
            // Egress serializers: push what tokens allow onto the wires.
            for port in 0..self.layout.count() {
                let Some(tx) = self.tx[port].as_mut() else {
                    continue;
                };
                tx.service_into(now, &mut dels);
                for delivery in dels.drain() {
                    progress = true;
                    // The egress slot frees once the packet is committed
                    // to the wire schedule.
                    self.sw.return_credits(port, delivery.flits);
                    match self.layout.classify(port) {
                        PortClass::Fabric(_) => {
                            let edge = self.edges[port].expect("fabric port has an edge");
                            ctx.send_at(
                                delivery.at,
                                edge.peer,
                                Msg::AdapterArrive {
                                    input: edge.peer_port,
                                    msg: delivery.payload,
                                },
                            );
                        }
                        PortClass::Host(l) => {
                            let TransitBody::Resp(pkt) = delivery.payload.body else {
                                unreachable!("only responses exit toward the host")
                            };
                            ctx.send_at(
                                delivery.at,
                                self.host,
                                Msg::HostResponse {
                                    link: LinkId(l as u8),
                                    pkt,
                                },
                            );
                        }
                        PortClass::Dev(_) => unreachable!("device ports have no serializer"),
                    }
                }
            }
            if !progress {
                break;
            }
        }
        self.dep_scratch = deps;
        self.del_scratch = dels;
        self.wake.set(ctx, self.sw.next_wake(now));
    }

    fn transit_stats(&self) -> TransitStats {
        TransitStats {
            forwarded: self.sw.forwarded(),
            arbitration_conflicts: self.sw.arbitration_conflicts(),
            peak_input_flits: (0..self.layout.count())
                .map(|p| self.sw.peak_input_flits(p))
                .collect(),
            link_stats: self.tx.iter().flatten().map(|tx| tx.stats()).collect(),
        }
    }
}

impl Component<Msg> for AdapterComp {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now();
        match msg {
            Msg::AdapterArrive { input, msg } => {
                let entry = SwitchEntry {
                    output: self.route_output(&msg),
                    flits: msg.flits(),
                    payload: msg,
                };
                self.sw
                    .try_enqueue(input, entry)
                    .unwrap_or_else(|_| panic!("pass-through input overflow: tokens violated"));
            }
            Msg::AdapterEgress { port, msg } => {
                let flits = msg.flits();
                self.tx[port]
                    .as_mut()
                    .expect("egress targets a serialized port")
                    .enqueue(msg, flits);
            }
            Msg::AdapterCredits { output, flits } => {
                // A return into a pool nobody starves on unblocks nothing:
                // time-driven progress is covered by the armed wake, so
                // the pump can be skipped entirely.
                if !self.sw.return_credits(output, flits) {
                    return;
                }
            }
            Msg::AdapterLinkTokens { port, flits } => {
                let starved = self.tx[port]
                    .as_mut()
                    .expect("tokens target a serialized port")
                    .return_tokens(flits);
                if !starved {
                    return;
                }
            }
            _ => unreachable!("message addressed elsewhere reached a pass-through stage"),
        }
        self.pump(now, ctx);
    }

    fn on_wake(&mut self, token: WakeToken, ctx: &mut Ctx<'_, Msg>) {
        if self.wake.fired(token) {
            let now = ctx.now();
            self.pump(now, ctx);
        }
    }

    fn name(&self) -> &str {
        "passthrough"
    }
}

/// The internal device→pass-through handoff: the device's upstream
/// serializer feeds the crossbar at the logic layer's datapath rate
/// (16 B / 0.8 ns = 20 GB/s) with no SerDes or protocol overhead — the
/// real external link is modelled by the pass-through stage's own
/// serializers.
fn internal_handoff_link(input_buffer_flits: u32) -> LinkConfig {
    LinkConfig {
        width: LinkWidth::Full,
        lane_gbps: 10.0,
        serdes_latency: Delay::ZERO,
        protocol_overhead: 0.0,
        input_buffer_flits,
        min_packet_time: Delay::ZERO,
    }
}

/// A complete simulated measurement system: FPGA host plus a network of
/// HMC cubes on a deterministic event engine.
///
/// One `FabricSim` performs one run ([`FabricSim::run_gups`] or
/// [`FabricSim::run_streams`]) and is then consumed by the report.
///
/// # Examples
///
/// ```
/// use hmc_des::Delay;
/// use hmc_fabric::{CubeId, FabricConfig, FabricPortSpec, FabricSim};
/// use hmc_host::GupsOp;
/// use hmc_mapping::AccessPattern;
/// use hmc_packet::PayloadSize;
///
/// // Two chained cubes; one port hammers the far cube.
/// let cfg = FabricConfig::chain(42, 2);
/// let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.cube.map);
/// let far = FabricPortSpec::gups(filter, GupsOp::Read(PayloadSize::B64), CubeId(1));
/// let report = FabricSim::new(cfg, vec![far])
///     .run_gups(Delay::from_us(5), Delay::from_us(20));
/// assert!(report.total_accesses() > 0);
/// assert_eq!(report.cubes.len(), 2);
/// ```
pub struct FabricSim {
    engine: Engine<Msg>,
    host: ComponentId,
    devices: Vec<ComponentId>,
    adapters: Vec<ComponentId>,
    port_targets: Vec<CubeTargeting>,
    started: bool,
}

impl FabricSim {
    /// Builds a fabric system with one port per spec.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, `specs` is empty, a spec
    /// statically targets a cube outside the fabric, or an addressed
    /// spec's map disagrees with the fabric's cube count.
    pub fn new(cfg: FabricConfig, specs: Vec<FabricPortSpec>) -> FabricSim {
        FabricSim::with_telemetry(cfg, specs, Probe::off())
    }

    /// Builds a fabric system with a telemetry probe attached to every
    /// component: the host's ports and request serializers, each cube's
    /// device and response serializers, and (multi-cube) the pass-through
    /// stages. With [`Probe::off`] this is exactly [`FabricSim::new`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`FabricSim::new`].
    pub fn with_telemetry(
        cfg: FabricConfig,
        specs: Vec<FabricPortSpec>,
        probe: Probe,
    ) -> FabricSim {
        cfg.validate().expect("valid fabric config");
        assert!(!specs.is_empty(), "a system needs at least one port");
        for s in &specs {
            match s.targeting {
                CubeTargeting::Fixed(cube) => assert!(
                    cube.0 < cfg.cube_count,
                    "port targets {} outside the {}-cube fabric",
                    cube,
                    cfg.cube_count
                ),
                CubeTargeting::Addressed(map) => assert!(
                    map.cube_count() == cfg.cube_count,
                    "port's address map spans {} cube(s) but the fabric has {}",
                    map.cube_count(),
                    cfg.cube_count
                ),
            }
        }
        let n = usize::from(cfg.cube_count);
        let port_targets: Vec<CubeTargeting> = specs.iter().map(|s| s.targeting).collect();

        // Device configuration per mode: in a fabric, the device's
        // upstream serializer becomes the internal handoff into the
        // pass-through stage.
        let dev_cfg: DeviceConfig = if n == 1 {
            cfg.cube.clone()
        } else {
            DeviceConfig {
                link: internal_handoff_link(cfg.hop.input_capacity_flits),
                ..cfg.cube.clone()
            }
        };
        let proto = HmcDevice::new(dev_cfg.clone());
        let mut host_cfg: HostConfig = cfg.host.clone();
        // Request-direction tokens guard the first receiver's input
        // buffer: the cube's link RX directly, or cube 0's pass-through
        // input.
        host_cfg.link.input_buffer_flits = if n == 1 {
            proto.request_tokens_per_link()
        } else {
            cfg.hop.input_capacity_flits
        };
        let ports: Vec<Port> = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                let seed = cfg
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64 + 1);
                Port::new(PortId(i as u8), (spec.source)(seed), spec.tags)
                    .with_targeting(spec.targeting)
            })
            .collect();
        let mut host_model = HostModel::new(host_cfg, ports);
        host_model.attach_probe(&probe);
        let period = host_model.config().fpga_period;

        // Component census is known up front: one host, n devices and
        // (multi-cube only) n pass-through stages.
        let component_count = 1 + n + if n > 1 { n } else { 0 };
        let mut engine = Engine::with_capacity(component_count);
        let host = engine.add_component(Box::new(HostComp {
            model: host_model,
            down: None,
            mode: RunMode::Stream,
            period,
            tick: AutoWake::new(),
            measure_start: Time::ZERO,
            measure_end: None,
            probe: probe.clone(),
        }));
        let devices: Vec<ComponentId> = (0..n)
            .map(|c| {
                let mut device = HmcDevice::new(dev_cfg.clone());
                device.attach_probe(&probe, c as u8);
                engine.add_component(Box::new(DeviceComp {
                    device,
                    up: Upstream::Host(host),
                    wake: AutoWake::new(),
                }))
            })
            .collect();

        if n == 1 {
            // The paper's single-cube system: host and device wired
            // directly, exactly as before the fabric existed.
            engine
                .component_mut::<HostComp>(host)
                .expect("host registered")
                .down = Some(Downstream::Direct { device: devices[0] });
            return FabricSim {
                engine,
                host,
                devices,
                adapters: Vec::new(),
                port_targets,
                started: false,
            };
        }

        // Multi-cube: one pass-through stage per cube.
        let routes = cfg.routes();
        let dev_links = dev_cfg.link_count();
        let host_links = usize::from(cfg.host.link_count);
        let layouts: Vec<AdapterLayout> = (0..n)
            .map(|c| AdapterLayout {
                dev_links,
                neighbors: cfg.topology.neighbors(cfg.cube_count, CubeId(c as u8)),
                host_links: if c == 0 { host_links } else { 0 },
            })
            .collect();
        let adapters: Vec<ComponentId> = (0..n)
            .map(|c| {
                let layout = layouts[c].clone();
                let count = layout.count();
                let sw_cfg = SwitchConfig {
                    inputs: count,
                    outputs: count,
                    input_capacity_flits: cfg.hop.input_capacity_flits,
                    hop_latency: cfg.hop.passthrough_latency,
                    flit_time: cfg.hop.flit_time,
                };
                let mut credits = vec![0u32; count];
                let mut tx: Vec<Option<LinkTx<TransitMsg>>> = Vec::with_capacity(count);
                for (p, credit) in credits.iter_mut().enumerate() {
                    match layout.classify(p) {
                        PortClass::Dev(_) => {
                            // Downstream buffer: the device's link RX
                            // (its request token pool).
                            *credit = proto.request_tokens_per_link();
                            tx.push(None);
                        }
                        PortClass::Fabric(_) => {
                            *credit = cfg.hop.egress_capacity_flits;
                            let mut link = LinkTx::new(&LinkConfig {
                                input_buffer_flits: cfg.hop.input_capacity_flits,
                                ..cfg.hop.link
                            });
                            link.set_probe(probe.clone(), c as u8, p as u8, LinkDir::Transit);
                            tx.push(Some(link));
                        }
                        PortClass::Host(_) => {
                            *credit = cfg.hop.egress_capacity_flits;
                            // Toward the host: the cube's own external
                            // link model, tokens guarding the host RX
                            // buffer — as the device's serializer does on
                            // a single-cube system.
                            let mut link = LinkTx::new(&LinkConfig {
                                min_packet_time: Delay::ZERO,
                                ..cfg.cube.link
                            });
                            link.set_probe(probe.clone(), c as u8, p as u8, LinkDir::Response);
                            tx.push(Some(link));
                        }
                    }
                }
                let caps = vec![cfg.hop.input_capacity_flits; count];
                let mut sw = SwitchCore::with_input_capacities(sw_cfg, &caps, &credits);
                sw.set_probe(probe.clone(), c as u8);
                engine.add_component(Box::new(AdapterComp {
                    cube: CubeId(c as u8),
                    layout,
                    routes: routes.clone(),
                    sw,
                    tx,
                    edges: vec![None; count],
                    device: devices[c],
                    host,
                    wake: AutoWake::new(),
                    dep_scratch: Departures::new(),
                    del_scratch: Deliveries::new(),
                    probe: probe.clone(),
                }))
            })
            .collect();

        // Wire the fabric edges (peer component + peer input port).
        for c in 0..n {
            let edges: Vec<(usize, FabricEdge)> = layouts[c]
                .neighbors
                .iter()
                .enumerate()
                .map(|(slot, &peer_cube)| {
                    let my_port = layouts[c].fabric_port(slot);
                    let peer_port = layouts[peer_cube.index()].port_toward(CubeId(c as u8));
                    (
                        my_port,
                        FabricEdge {
                            peer: adapters[peer_cube.index()],
                            peer_port,
                        },
                    )
                })
                .collect();
            let adapter = engine
                .component_mut::<AdapterComp>(adapters[c])
                .expect("adapter registered");
            for (port, edge) in edges {
                adapter.edges[port] = Some(edge);
            }
        }
        for c in 0..n {
            engine
                .component_mut::<DeviceComp>(devices[c])
                .expect("device registered")
                .up = Upstream::Adapter(adapters[c]);
        }
        engine
            .component_mut::<HostComp>(host)
            .expect("host registered")
            .down = Some(Downstream::Fabric {
            adapter: adapters[0],
            host_port_base: layouts[0].host_port(LinkId(0)),
        });

        FabricSim {
            engine,
            host,
            devices,
            adapters,
            port_targets,
            started: false,
        }
    }

    /// Runs the GUPS firmware: every port generates random requests for
    /// `warmup + measure`, monitors reset after `warmup`, and the
    /// measurement freezes at the end while in-flight traffic drains.
    ///
    /// # Panics
    ///
    /// Panics if the system was already run.
    pub fn run_gups(&mut self, warmup: Delay, measure: Delay) -> RunReport {
        assert!(!self.started, "a FabricSim performs a single run");
        self.started = true;
        let stop_at = Time::ZERO + warmup + measure;
        {
            let host = self
                .engine
                .component_mut::<HostComp>(self.host)
                .expect("host");
            host.mode = RunMode::GupsUntil(stop_at);
            host.model.set_all_active(true);
        }
        self.engine.schedule(Time::ZERO, self.host, Msg::HostKick);
        self.engine
            .schedule(Time::ZERO + warmup, self.host, Msg::HostResetStats);
        self.engine.schedule(stop_at, self.host, Msg::HostStop);
        self.engine.run_to_quiescence();
        self.collect()
    }

    /// Runs the multi-port stream firmware: every port replays its trace
    /// as fast as tags allow; the run ends when all responses are home.
    ///
    /// # Panics
    ///
    /// Panics if the system was already run.
    pub fn run_streams(&mut self) -> RunReport {
        assert!(!self.started, "a FabricSim performs a single run");
        self.started = true;
        {
            let host = self
                .engine
                .component_mut::<HostComp>(self.host)
                .expect("host");
            host.mode = RunMode::Stream;
        }
        self.engine.schedule(Time::ZERO, self.host, Msg::HostKick);
        self.engine.run_to_quiescence();
        self.collect()
    }

    /// Event-engine counters for this system: events dispatched, timer
    /// fires and cancellations. With the event-driven core, `dispatched`
    /// scales with actual traffic instead of with simulated FPGA cycles —
    /// the regression tests assert it stays an order of magnitude below
    /// per-cycle ticking on low-load runs.
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Peak-occupancy census of one cube's internal buffers after a run;
    /// a calibration/debugging aid.
    #[doc(hidden)]
    pub fn device_peak_census(&self, cube: CubeId) -> Vec<(String, u64)> {
        self.engine
            .component::<DeviceComp>(self.devices[cube.index()])
            .expect("device registered")
            .device
            .peak_census()
    }

    fn collect(&mut self) -> RunReport {
        let sim_end = self.engine.now();
        let host = self.engine.component::<HostComp>(self.host).expect("host");
        let measure_end = host.measure_end.unwrap_or(sim_end);
        let elapsed = measure_end.saturating_since(host.measure_start);
        let ports = host
            .model
            .ports()
            .iter()
            .map(|p| PortReport {
                port: p.id(),
                source: p.source_label(),
                issued: p.issued(),
                completed: p.completed(),
                latency: *p.latency(),
                bytes: *p.bytes(),
                reads: p.reads_recorded(),
                writes: p.writes_recorded(),
                cube: self.port_targets[p.id().index()].fixed_cube(),
                cube_completions: *p.completed_by_cube(),
            })
            .collect();
        let cubes: Vec<CubeReport> = self
            .devices
            .iter()
            .enumerate()
            .map(|(c, &id)| {
                let device = self
                    .engine
                    .component::<DeviceComp>(id)
                    .expect("device registered")
                    .device
                    .stats();
                let transit = self.adapters.get(c).map(|&aid| {
                    self.engine
                        .component::<AdapterComp>(aid)
                        .expect("adapter registered")
                        .transit_stats()
                });
                CubeReport {
                    cube: CubeId(c as u8),
                    device,
                    transit,
                }
            })
            .collect();
        RunReport {
            ports,
            elapsed,
            device: cubes[0].device.clone(),
            cubes,
            sim_end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_mapping::{AccessPattern, VaultId};
    use hmc_packet::PayloadSize;
    use hmc_workloads::random_reads_in_banks;

    fn one_read_trace(cfg: &FabricConfig, seed: u64) -> hmc_workloads::Trace {
        random_reads_in_banks(&cfg.cube.map, VaultId(0), 16, PayloadSize::B64, 1, seed)
    }

    #[test]
    fn single_cube_fabric_has_no_passthrough() {
        let cfg = FabricConfig::single(
            hmc_device::DeviceConfig::ac510_hmc(),
            hmc_host::HostConfig::ac510_default(),
            3,
        );
        let trace = one_read_trace(&cfg, 3);
        let report =
            FabricSim::new(cfg, vec![FabricPortSpec::stream(trace, CubeId(0))]).run_streams();
        assert_eq!(report.cubes.len(), 1);
        assert!(report.cubes[0].transit.is_none());
        assert_eq!(report.transit_forwarded(), 0);
    }

    #[test]
    fn remote_requests_are_serviced_by_the_remote_cube() {
        let cfg = FabricConfig::chain(5, 3);
        let trace = random_reads_in_banks(&cfg.cube.map, VaultId(1), 4, PayloadSize::B32, 50, 5);
        let report =
            FabricSim::new(cfg, vec![FabricPortSpec::stream(trace, CubeId(2))]).run_streams();
        assert_eq!(report.ports[0].completed, 50);
        assert_eq!(report.cubes[2].device.requests_received, 50);
        assert_eq!(report.cubes[0].device.requests_received, 0);
        assert_eq!(report.cubes[1].device.requests_received, 0);
        // Transit: cube 0 and cube 1 each forwarded request and response.
        for c in [0, 1] {
            let t = report.cubes[c].transit.as_ref().unwrap();
            assert!(t.forwarded >= 100, "cube {c} forwarded {}", t.forwarded);
        }
    }

    #[test]
    fn fabric_runs_are_deterministic() {
        let run = |seed: u64| {
            let cfg = FabricConfig::star(seed, 4);
            let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.cube.map);
            let specs: Vec<FabricPortSpec> = (0..4)
                .map(|c| {
                    FabricPortSpec::gups(
                        filter,
                        hmc_host::GupsOp::Read(PayloadSize::B64),
                        CubeId(c),
                    )
                })
                .collect();
            let r = FabricSim::new(cfg, specs).run_gups(Delay::from_us(5), Delay::from_us(15));
            (
                r.total_accesses(),
                r.aggregate_latency().total_ps(),
                r.transit_forwarded(),
                r.total_switch_conflicts(),
            )
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn farther_cubes_cost_more_unloaded_latency() {
        let mut prev = 0.0;
        for target in 0..3u8 {
            let cfg = FabricConfig::chain(7, 3);
            let trace = one_read_trace(&cfg, 7);
            let report = FabricSim::new(cfg, vec![FabricPortSpec::stream(trace, CubeId(target))])
                .run_streams();
            let ns = report.mean_latency_ns();
            assert!(
                ns > prev,
                "latency must grow with hop count: cube{target} {ns} ns vs {prev} ns"
            );
            prev = ns;
        }
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn ports_cannot_target_missing_cubes() {
        let cfg = FabricConfig::chain(0, 2);
        let trace = one_read_trace(&cfg, 0);
        let _ = FabricSim::new(cfg, vec![FabricPortSpec::stream(trace, CubeId(5))]);
    }

    #[test]
    #[should_panic(expected = "spans 4 cube(s) but the fabric has 2")]
    fn addressed_map_must_match_the_fabric_size() {
        let cfg = FabricConfig::chain(0, 2);
        let map =
            hmc_mapping::FabricAddressMap::new(hmc_mapping::CubePolicy::Blocked, 4, &cfg.cube.map);
        let trace = one_read_trace(&cfg, 0);
        let _ = FabricSim::new(
            cfg,
            vec![FabricPortSpec::stream(trace, CubeId(0)).addressed(map)],
        );
    }

    #[test]
    fn addressed_ports_derive_cube_from_the_address() {
        use hmc_mapping::{CubePolicy, FabricAddressMap};
        use hmc_packet::GlobalAddress;

        // One stream, explicit global addresses: block 0 in cube 0,
        // block 1 in cube 2, block 2 in cube 1 (blocked map: high bits).
        let cfg = FabricConfig::chain(9, 3);
        let fabric = FabricAddressMap::new(CubePolicy::Blocked, 3, &cfg.cube.map);
        let ops: Vec<hmc_workloads::TraceOp> =
            [(0u64, 0x000u64), (2, 0x080), (1, 0x100), (2, 0x180)]
                .iter()
                .map(|&(cube, local)| {
                    hmc_workloads::TraceOp::read(
                        GlobalAddress::new(cube << 34 | local),
                        hmc_packet::PayloadSize::B64,
                    )
                })
                .collect();
        let trace = hmc_workloads::Trace::from_ops(ops);
        let report = FabricSim::new(
            cfg,
            vec![FabricPortSpec::stream(trace, CubeId(0)).addressed(fabric)],
        )
        .run_streams();
        assert_eq!(report.ports[0].completed, 4);
        assert_eq!(report.cubes[0].device.requests_received, 1);
        assert_eq!(report.cubes[1].device.requests_received, 1);
        assert_eq!(report.cubes[2].device.requests_received, 2);
        // The split stream has no static cube; its per-cube attribution
        // carries the spread instead.
        assert_eq!(report.ports[0].cube, None);
        assert_eq!(report.ports[0].cube_completions[..3], [1, 1, 2]);
        assert_eq!(report.cube_completions(CubeId(2)), 2);
        assert_eq!(report.cubes_hit(), 3);
    }

    #[test]
    fn offload_copies_between_cubes_touch_both_devices() {
        use hmc_mapping::{CubePolicy, FabricAddressMap};
        use hmc_workloads::OffloadSource;

        let cfg = FabricConfig::chain(4, 2);
        let map = cfg.cube.map;
        let fabric = FabricAddressMap::new(CubePolicy::Blocked, 2, &map);
        let blocks = 40u64;
        let spec = FabricPortSpec::from_source(
            move |_| {
                Box::new(OffloadSource::between_cubes(
                    &map,
                    fabric,
                    (CubeId(0), VaultId(0)),
                    (CubeId(1), VaultId(8)),
                    PayloadSize::B128,
                    blocks,
                    8,
                ))
            },
            CubeId(0),
        )
        .addressed(fabric);
        let report = FabricSim::new(cfg, vec![spec]).run_streams();
        // Every pair: the read terminates at cube 0, the dependent write
        // crosses the fabric to cube 1.
        assert_eq!(report.ports[0].completed, 2 * blocks);
        assert_eq!(report.cubes[0].device.requests_received, blocks);
        assert_eq!(report.cubes[1].device.requests_received, blocks);
        assert_eq!(report.total_reads(), blocks);
        assert_eq!(report.total_writes(), blocks);
        assert_eq!(report.ports[0].cube_completions[..2], [blocks, blocks]);
    }
}
