//! The fabric simulation: host, cubes and pass-through stages wired onto
//! the deterministic event engine.
//!
//! A [`FabricSim`] generalizes the single-cube measurement system to a
//! memory network. Cube 0 carries the host links; every other cube is
//! reached through HMC-style source routing: the host stamps each request
//! with its destination cube and the link layer of every transit cube
//! forwards it through a pass-through crossbar ([`hmc_noc::SwitchCore`])
//! onto the next cube-to-cube link. Responses retrace the route. Because
//! the pass-through crossbar is a real arbitrated switch with finite
//! buffers and credits, transit traffic contends with traffic terminating
//! at the cube — the multi-cube extension of the paper's central claim
//! that the NoC, not the DRAM, governs loaded latency.
//!
//! With `cube_count == 1` the component graph is exactly the single-cube
//! system (host wired straight to the device, no pass-through stage), so
//! single-cube results are unchanged by the fabric machinery.
//!
//! # Parallel domains
//!
//! [`FabricSim::with_domains`] partitions the cubes into contiguous
//! engine *domains* that advance concurrently under conservative
//! lookahead: every cube-to-cube message (packet deliveries *and* link
//! token returns) crosses its edge with at least the fabric SerDes
//! latency `L` ([`FabricConfig::lookahead`]), so a domain may safely
//! simulate `L` per hop beyond its neighbors' earliest pending events
//! (see [`crate::domain`]). Cross-domain messages travel as timestamped
//! envelopes over channels and are injected as *keyed* events whose
//! ordering key — a per-edge channel id plus a per-channel sequence —
//! is identical in serial and parallel schedules, which is what makes
//! the run report byte-identical for every `--domains` setting.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

use hmc_des::pool;
use hmc_des::{
    AutoWake, Component, ComponentId, Ctx, Delay, Engine, EngineStats, Time, WakeToken,
    KEYED_EVENT_BIT,
};
use hmc_device::{DeviceConfig, DeviceOutput, DeviceStats, HmcDevice};
use hmc_faults::{FaultPlan, LinkKey};
use hmc_host::{HostConfig, HostEvent, HostEvents, HostModel, Port};
use hmc_link::{Deliveries, LinkConfig, LinkTx, LinkWidth, RetryTuning};
use hmc_mapping::CubeTargeting;
use hmc_noc::{Departures, SwitchConfig, SwitchCore, SwitchEntry};
use hmc_packet::{LinkId, PortId, RequestPacket, ResponsePacket};
use hmc_telemetry::{Hub, HubConfig, LinkDir, Probe, Stage};
use hmc_workloads::{source_factory, GupsSource, SourceFactory, TraceReplay, TrafficSource};

use crate::config::{CubeId, FabricConfig};
use crate::domain::{plan_windows, BarrierPoisoned, DomainPlan, PhaseBarrier};
use crate::report::{CubeReport, PortReport, RunReport, TransitStats};
use crate::route::RouteTable;

/// Default GUPS tag-pool size: 64 tags per port. Nine ports give the 576
/// maximum outstanding requests consistent with the paper's Figure 14
/// (≈535 measured for 4-bank patterns, just under the tag ceiling).
pub const GUPS_TAGS: u16 = 64;

/// Default stream tag-pool size: 80 tags per port, matching the Figure 8
/// saturation knee (the paper's latency stops growing near 100 in-flight
/// requests).
pub const STREAM_TAGS: u16 = 80;

/// Specification of one traffic port of a fabric system.
///
/// The spec carries a [`SourceFactory`] rather than a built source so that
/// one spec can be cloned across ports (`vec![spec; 9]`) while each port's
/// source is still built with its own deterministically derived seed.
#[derive(Clone)]
pub struct FabricPortSpec {
    /// Builds the port's traffic source from the port's derived seed.
    pub source: SourceFactory,
    /// Tag-pool size (maximum outstanding requests).
    pub tags: u16,
    /// How the host derives the CUB field for this port's requests: a
    /// statically configured cube (the degenerate single-cube map — the
    /// pre-fabric behavior), or a per-request split of the workload's
    /// global address under a
    /// [`FabricAddressMap`](hmc_mapping::FabricAddressMap).
    pub targeting: CubeTargeting,
}

impl std::fmt::Debug for FabricPortSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FabricPortSpec")
            .field("tags", &self.tags)
            .field("targeting", &self.targeting)
            .finish_non_exhaustive()
    }
}

impl FabricPortSpec {
    /// A GUPS port with the default tag pool, targeting `cube`.
    pub fn gups(
        filter: hmc_mapping::AddressFilter,
        op: hmc_workloads::GupsOp,
        cube: CubeId,
    ) -> FabricPortSpec {
        FabricPortSpec {
            source: source_factory(move |seed| Box::new(GupsSource::new(filter, op, seed))),
            tags: GUPS_TAGS,
            targeting: CubeTargeting::Fixed(cube),
        }
    }

    /// A stream port with the default tag pool, targeting `cube`.
    pub fn stream(trace: hmc_workloads::Trace, cube: CubeId) -> FabricPortSpec {
        FabricPortSpec {
            source: source_factory(move |_seed| Box::new(TraceReplay::new(trace.clone()))),
            tags: STREAM_TAGS,
            targeting: CubeTargeting::Fixed(cube),
        }
    }

    /// A port over any traffic source, targeting `cube`, with the default
    /// stream tag pool. The factory receives the port's derived seed.
    pub fn from_source<F>(factory: F, cube: CubeId) -> FabricPortSpec
    where
        F: Fn(u64) -> Box<dyn TrafficSource> + Send + Sync + 'static,
    {
        FabricPortSpec {
            source: source_factory(factory),
            tags: STREAM_TAGS,
            targeting: CubeTargeting::Fixed(cube),
        }
    }

    /// Overrides the tag-pool size.
    pub fn with_tags(mut self, tags: u16) -> FabricPortSpec {
        self.tags = tags;
        self
    }

    /// Replaces this port's targeting: the CUB field of each request is
    /// derived from the workload's global address instead of a static
    /// cube. The map must span exactly the fabric's cube count.
    pub fn addressed(mut self, map: hmc_mapping::FabricAddressMap) -> FabricPortSpec {
        self.targeting = CubeTargeting::Addressed(map);
        self
    }
}

/// A packet in flight on the fabric, stamped with its source route anchors:
/// the destination cube (requests) and the host link affinity that carries
/// it back out (responses exit the fabric on the host link the request
/// entered on).
#[derive(Debug, Clone, Copy)]
struct TransitMsg {
    /// Destination cube of a request; responses always head for cube 0.
    dest: CubeId,
    /// The host link the transaction entered on; doubles as the device
    /// link used at the destination cube.
    host_link: LinkId,
    body: TransitBody,
}

#[derive(Debug, Clone, Copy)]
enum TransitBody {
    Req(RequestPacket),
    Resp(ResponsePacket),
}

impl TransitMsg {
    fn flits(&self) -> u32 {
        match &self.body {
            TransitBody::Req(pkt) => pkt.flits(),
            TransitBody::Resp(pkt) => pkt.flits(),
        }
    }

    /// The `(port, tag)` transaction identity telemetry traces by.
    fn identity(&self) -> (u16, u16) {
        match &self.body {
            TransitBody::Req(pkt) => (u16::from(pkt.port.0), pkt.tag.0),
            TransitBody::Resp(pkt) => (u16::from(pkt.port.0), pkt.tag.0),
        }
    }
}

/// Messages exchanged between the components. Periodic work (host FPGA
/// cycles, deferred crossbar service, internal device timers) is *not*
/// message-driven: each component arms an engine timer at its model's
/// `next_wake` instant and sleeps in between, so no component ticks while
/// idle.
enum Msg {
    /// Kick-start the host's tick timer (sent once at the beginning of a
    /// run; every subsequent cycle is a timer wakeup the host re-arms
    /// itself, skipping idle stretches).
    HostKick,
    /// Deactivate GUPS ports and freeze monitors (end of measurement).
    HostStop,
    /// Clear monitors (end of warmup).
    HostResetStats,
    /// A response fully arrived at the host on `link`.
    HostResponse { link: LinkId, pkt: ResponsePacket },
    /// A response finished draining to its port.
    PortDeliver { pkt: ResponsePacket },
    /// Request-direction tokens freed toward the host's transmitter.
    ReturnRequestTokens { link: LinkId, flits: u32 },
    /// A request fully arrived at a device on `link`.
    DeviceRequest { link: LinkId, pkt: RequestPacket },
    /// The downstream receiver freed response-direction buffer space.
    ReturnResponseTokens { link: LinkId, flits: u32 },
    /// A packet fully arrived at a pass-through stage on `input`.
    AdapterArrive { input: usize, msg: TransitMsg },
    /// A packet cleared the crossbar and enters the egress serializer
    /// behind `port`.
    AdapterEgress { port: usize, msg: TransitMsg },
    /// Downstream credits freed for a crossbar output.
    AdapterCredits { output: usize, flits: u32 },
    /// Link tokens returned to the serializer behind `port`.
    AdapterLinkTokens { port: usize, flits: u32 },
    /// Re-anchor this stage's telemetry window (end of GUPS warmup).
    /// Scheduled for every pass-through stage so each engine domain's
    /// telemetry shard resets even when the host lives elsewhere.
    AdapterResetWindow,
}

/// A cross-domain message captured at the sending edge: the absolute
/// delivery time, the canonical ordering key and the payload. Injected
/// into the receiving domain's engine between window rounds.
struct Envelope {
    at: Time,
    key: u64,
    msg: Msg,
}

/// The staging buffer one remote edge drains into; the window loop moves
/// its contents onto the edge's channel after each `run_until`.
type Outbox = Rc<RefCell<Vec<Envelope>>>;

/// A domain's inbound channels, each tagged with the sending cube whose
/// adapter the delivered envelopes address.
type Inboxes = Vec<(usize, Receiver<Envelope>)>;

/// Where a fabric edge's messages go: straight into the shared engine
/// (serial, or a neighbor in the same domain) or into an outbox bound for
/// another domain's engine.
enum EdgeWire {
    Local(ComponentId),
    Remote(Outbox),
}

impl EdgeWire {
    fn send(&self, ctx: &mut Ctx<'_, Msg>, at: Time, key: u64, msg: Msg) {
        match self {
            EdgeWire::Local(to) => ctx.send_keyed_at(at, *to, key, msg),
            EdgeWire::Remote(outbox) => outbox.borrow_mut().push(Envelope { at, key, msg }),
        }
    }
}

/// Builds a keyed-event ordering key: bit 63 selects the keyed band (at
/// equal timestamps keyed events sort after all plain events, in key
/// order), bits 62..40 the channel, bits 39..0 the per-channel sequence.
/// Because the key — not push order — decides ties, a message injected
/// from another domain sorts exactly where the serial schedule would have
/// pushed it.
fn keyed(chan: u64, seq: &mut u64) -> u64 {
    let s = *seq;
    *seq += 1;
    debug_assert!(s < 1 << 40, "per-channel sequence overflow");
    debug_assert!(chan < 1 << 23, "channel id overflows the key layout");
    KEYED_EVENT_BIT | (chan << 40) | s
}

/// One directed fabric edge as seen by its sending pass-through stage:
/// the wire (local engine or cross-domain outbox), the crossbar input
/// port on the peer, and the two keyed channels — packet arrivals and
/// link-token returns — with their monotone sequences. The channel ids
/// derive from the global edge index, so serial and parallel schedules
/// generate identical keys.
struct EdgeCtl {
    wire: EdgeWire,
    peer_port: usize,
    arrive_chan: u64,
    tokens_chan: u64,
    arrive_seq: u64,
    tokens_seq: u64,
}

impl EdgeCtl {
    fn next_arrive_key(&mut self) -> u64 {
        keyed(self.arrive_chan, &mut self.arrive_seq)
    }

    fn next_tokens_key(&mut self) -> u64 {
        keyed(self.tokens_chan, &mut self.tokens_seq)
    }
}

/// How a run terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunMode {
    /// GUPS ports tick until the stop time, then drain.
    GupsUntil(Time),
    /// Stream ports tick until every trace is issued and answered.
    Stream,
}

/// What [`FabricSim::execute`] is asked to run.
#[derive(Debug, Clone, Copy)]
enum RunKind {
    Gups { warmup: Delay, measure: Delay },
    Streams,
}

/// Where the host's request traffic goes.
enum Downstream {
    /// Single cube: straight into the device, as in the paper's system.
    Direct { device: ComponentId },
    /// Multi-cube: into cube 0's pass-through stage. The destination cube
    /// is read off each packet's CUB field — the host's port logic
    /// stamped it when it split the workload's address.
    Fabric {
        adapter: ComponentId,
        /// Index of the first host-facing port on cube 0's crossbar.
        host_port_base: usize,
    },
}

struct HostComp {
    model: HostModel,
    down: Option<Downstream>,
    mode: RunMode,
    period: Delay,
    /// The tick timer: armed at the model's next interesting FPGA cycle,
    /// disarmed while the host is idle.
    tick: AutoWake,
    measure_start: Time,
    measure_end: Option<Time>,
    /// Telemetry probe; its epoch window re-anchors when monitors reset.
    probe: Probe,
}

impl HostComp {
    /// Relays a view of the host model's reused event buffer. An
    /// associated function over the `down` field (not `&self`) so callers
    /// can hold the model borrowed while relaying — the zero-copy,
    /// zero-allocation path from model to engine.
    fn relay(down: &Option<Downstream>, events: &HostEvents, ctx: &mut Ctx<'_, Msg>) {
        let down = down.as_ref().expect("host wired before first message");
        let me = ctx.self_id();
        for ev in events.iter() {
            match *ev {
                HostEvent::RequestArrival { link, pkt, at } => match down {
                    Downstream::Direct { device } => {
                        ctx.send_at(at, *device, Msg::DeviceRequest { link, pkt });
                    }
                    Downstream::Fabric {
                        adapter,
                        host_port_base,
                    } => {
                        let msg = TransitMsg {
                            dest: pkt.cube,
                            host_link: link,
                            body: TransitBody::Req(pkt),
                        };
                        let input = host_port_base + link.index();
                        ctx.send_at(at, *adapter, Msg::AdapterArrive { input, msg });
                    }
                },
                HostEvent::ResponseDrained { pkt, at, .. } => {
                    ctx.send_at(at, me, Msg::PortDeliver { pkt });
                }
                HostEvent::ResponseTokens { link, flits, at } => match down {
                    Downstream::Direct { device } => {
                        ctx.send_at(at, *device, Msg::ReturnResponseTokens { link, flits });
                    }
                    Downstream::Fabric {
                        adapter,
                        host_port_base,
                        ..
                    } => {
                        let port = host_port_base + link.index();
                        ctx.send_at(at, *adapter, Msg::AdapterLinkTokens { port, flits });
                    }
                },
            }
        }
    }

    fn should_tick_at(&self, at: Time) -> bool {
        match self.mode {
            RunMode::GupsUntil(stop) => at < stop,
            RunMode::Stream => !self.model.all_done(),
        }
    }

    /// One host FPGA cycle, then re-arm for the next interesting one.
    fn do_tick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let events = self.model.tick(ctx.now());
        Self::relay(&self.down, events, ctx);
        self.arm_tick(ctx, true);
    }

    /// Moves the tick timer to the model's next interesting instant:
    /// `HostModel::next_wake` snapped forward past the cycle just run (so
    /// a tick never re-fires at its own timestamp) and gated by the run
    /// mode. With no interesting instant the timer is cancelled — the
    /// idle-skip at the heart of the event-driven core.
    fn arm_tick(&mut self, ctx: &mut Ctx<'_, Msg>, just_ticked: bool) {
        let now = ctx.now();
        let at = match self.model.next_wake(now) {
            Some(t) if just_ticked => t.max(now + self.period),
            Some(t) => t,
            None => {
                self.tick.set(ctx, None);
                return;
            }
        };
        let want = self.should_tick_at(at).then_some(at);
        self.tick.set(ctx, want);
    }
}

impl Component<Msg> for HostComp {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        match msg {
            Msg::HostKick => self.do_tick(ctx),
            Msg::HostStop => {
                self.model.set_all_active(false);
                self.model.freeze_stats();
                self.measure_end = Some(ctx.now());
                self.arm_tick(ctx, false);
            }
            Msg::HostResetStats => {
                self.model.reset_stats();
                self.measure_start = ctx.now();
                self.probe.reset_window(ctx.now());
            }
            Msg::HostResponse { link, pkt } => {
                let events = self.model.on_response_arrival(ctx.now(), link, pkt);
                Self::relay(&self.down, events, ctx);
            }
            Msg::PortDeliver { pkt } => {
                self.model.deliver_response(ctx.now(), &pkt);
                self.arm_tick(ctx, false);
            }
            Msg::ReturnRequestTokens { link, flits } => {
                let events = self.model.on_request_tokens(ctx.now(), link, flits);
                Self::relay(&self.down, events, ctx);
                self.arm_tick(ctx, false);
            }
            _ => unreachable!("message addressed elsewhere reached the host"),
        }
    }

    fn on_wake(&mut self, token: WakeToken, ctx: &mut Ctx<'_, Msg>) {
        if self.tick.fired(token) {
            self.do_tick(ctx);
        }
    }

    fn name(&self) -> &str {
        "host"
    }
}

/// Where a device's upstream traffic (responses, freed tokens) goes.
#[derive(Clone, Copy)]
enum Upstream {
    /// Single cube: straight back to the host.
    Host(ComponentId),
    /// Multi-cube: into the cube's own pass-through stage; device link
    /// `l` feeds crossbar input `l` (device ports come first).
    Adapter(ComponentId),
}

struct DeviceComp {
    device: HmcDevice,
    /// Wired after construction (the pass-through stage is built later in
    /// the same domain) and before the first message can arrive.
    up: Option<Upstream>,
    /// Armed at the device's next internal deadline (bank timers, switch
    /// busy intervals); disarmed while the device is drained.
    wake: AutoWake,
}

impl DeviceComp {
    /// Advances the device to `now`, relays its outputs, and re-arms the
    /// timer at the next internal deadline.
    fn service(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now();
        let up = self.up.expect("device wired before first message");
        for out in self.device.advance(now) {
            match *out {
                DeviceOutput::Response { link, pkt, at } => match up {
                    Upstream::Host(host) => {
                        ctx.send_at(at, host, Msg::HostResponse { link, pkt });
                    }
                    Upstream::Adapter(adapter) => {
                        let msg = TransitMsg {
                            dest: CubeId::HOST,
                            host_link: link,
                            body: TransitBody::Resp(pkt),
                        };
                        ctx.send_at(
                            at,
                            adapter,
                            Msg::AdapterArrive {
                                input: link.index(),
                                msg,
                            },
                        );
                    }
                },
                DeviceOutput::RequestTokens { link, flits } => match up {
                    Upstream::Host(host) => {
                        ctx.send(Delay::ZERO, host, Msg::ReturnRequestTokens { link, flits });
                    }
                    Upstream::Adapter(adapter) => {
                        ctx.send(
                            Delay::ZERO,
                            adapter,
                            Msg::AdapterCredits {
                                output: link.index(),
                                flits,
                            },
                        );
                    }
                },
            }
        }
        let next = self.device.next_wake();
        debug_assert!(next.is_none_or(|t| t >= now), "device wake in the past");
        self.wake.set(ctx, next);
    }
}

impl Component<Msg> for DeviceComp {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now();
        match msg {
            Msg::DeviceRequest { link, pkt } => self.device.on_request(now, link, pkt),
            Msg::ReturnResponseTokens { link, flits } => {
                self.device.return_response_tokens(link, flits);
            }
            _ => unreachable!("message addressed elsewhere reached a device"),
        }
        self.service(ctx);
    }

    fn on_wake(&mut self, token: WakeToken, ctx: &mut Ctx<'_, Msg>) {
        if self.wake.fired(token) {
            self.service(ctx);
        }
    }

    fn name(&self) -> &str {
        "device"
    }
}

/// Port layout of one cube's pass-through crossbar:
/// `[device links, fabric links (by ascending neighbor id), host links]`,
/// host links existing only on cube 0.
#[derive(Debug, Clone)]
struct AdapterLayout {
    dev_links: usize,
    neighbors: Vec<CubeId>,
    host_links: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PortClass {
    /// Local device link `l`.
    Dev(usize),
    /// Fabric link slot `i` (toward `neighbors[i]`).
    Fabric(usize),
    /// Host link `l` (cube 0 only).
    Host(usize),
}

impl AdapterLayout {
    fn count(&self) -> usize {
        self.dev_links + self.neighbors.len() + self.host_links
    }

    fn dev_port(&self, link: LinkId) -> usize {
        link.index()
    }

    fn fabric_port(&self, slot: usize) -> usize {
        self.dev_links + slot
    }

    fn host_port(&self, link: LinkId) -> usize {
        self.dev_links + self.neighbors.len() + link.index()
    }

    fn classify(&self, port: usize) -> PortClass {
        if port < self.dev_links {
            PortClass::Dev(port)
        } else if port < self.dev_links + self.neighbors.len() {
            PortClass::Fabric(port - self.dev_links)
        } else {
            PortClass::Host(port - self.dev_links - self.neighbors.len())
        }
    }

    /// The fabric port whose link leads to `cube`.
    fn port_toward(&self, cube: CubeId) -> usize {
        let slot = self
            .neighbors
            .iter()
            .position(|&n| n == cube)
            .unwrap_or_else(|| panic!("no fabric link toward {cube}"));
        self.fabric_port(slot)
    }
}

/// One cube's pass-through stage: the link-layer crossbar that joins the
/// local device, the cube-to-cube links and (on cube 0) the host links.
struct AdapterComp {
    cube: CubeId,
    layout: AdapterLayout,
    routes: RouteTable,
    sw: SwitchCore<TransitMsg>,
    /// Egress serializer behind each fabric/host port (`None` on device
    /// ports, whose receiver is the device's own link input buffer).
    tx: Vec<Option<LinkTx<TransitMsg>>>,
    /// Fabric edge wiring per port (`None` on non-fabric ports).
    edges: Vec<Option<EdgeCtl>>,
    device: ComponentId,
    /// The host component — present only in the domain that owns cube 0,
    /// the only cube with host-facing crossbar ports.
    host: Option<ComponentId>,
    /// The fabric edge lookahead: token returns to a neighbor ride the
    /// reverse SerDes and arrive this much later.
    lookahead: Delay,
    /// The crossbar needs service: a fresh enqueue, a credit return that
    /// un-starved an output, or the armed time wake fired.
    sw_dirty: bool,
    /// Per-port bitmask of egress serializers needing service: a fresh
    /// egress enqueue or a token return that un-starved the head. Clean
    /// serializers are provably idle — `LinkTx` commits everything its
    /// tokens allow in one call and has no time-driven wakeups — so the
    /// pump skips them entirely. One u64 bounds a crossbar to 64 ports
    /// ([`FabricConfig::validate`] enforces it — only star hubs past ~60
    /// cubes can exceed the ceiling).
    tx_dirty: u64,
    /// Armed at the crossbar's next output-free instant; disarmed while
    /// every queued head waits on credits (the credit return notifies).
    wake: AutoWake,
    /// Reused departure scratch for crossbar service.
    dep_scratch: Departures<TransitMsg>,
    /// Reused delivery scratch for egress serializer service.
    del_scratch: Deliveries<TransitMsg>,
    /// Telemetry probe (detached by default).
    probe: Probe,
}

impl AdapterComp {
    fn route_output(&self, msg: &TransitMsg) -> usize {
        match msg.body {
            TransitBody::Req(_) => {
                if msg.dest == self.cube {
                    self.layout.dev_port(msg.host_link)
                } else {
                    self.layout
                        .port_toward(self.routes.next_hop(self.cube, msg.dest))
                }
            }
            TransitBody::Resp(_) => {
                if self.cube == CubeId::HOST {
                    self.layout.host_port(msg.host_link)
                } else {
                    self.layout
                        .port_toward(self.routes.next_hop(self.cube, CubeId::HOST))
                }
            }
        }
    }

    /// Runs crossbar and egress service to a fixpoint, but only over the
    /// parts marked dirty: the crossbar when something enqueued, a credit
    /// un-starved an output or its time wake fired; each serializer when
    /// something entered it or a token return un-starved its head.
    fn pump(&mut self, now: Time, ctx: &mut Ctx<'_, Msg>) {
        let me = ctx.self_id();
        let mut deps = std::mem::take(&mut self.dep_scratch);
        let mut dels = std::mem::take(&mut self.del_scratch);
        while self.sw_dirty || self.tx_dirty != 0 {
            if self.sw_dirty {
                self.sw_dirty = false;
                self.sw.service_into(now, &mut deps);
                for d in deps.drain() {
                    // A departure may free head-of-line space the next
                    // service round can use.
                    self.sw_dirty = true;
                    let (t_port, t_tag) = d.payload.identity();
                    self.probe.trace_mark(t_port, t_tag, Stage::Transit, d.at);
                    // Input drained: return the space to whoever
                    // serialized into it. Across a fabric edge the return
                    // rides the reverse SerDes — one lookahead of latency
                    // — and carries a canonical ordering key.
                    match self.layout.classify(d.input) {
                        PortClass::Dev(l) => {
                            ctx.send(
                                Delay::ZERO,
                                self.device,
                                Msg::ReturnResponseTokens {
                                    link: LinkId(l as u8),
                                    flits: d.flits,
                                },
                            );
                        }
                        PortClass::Fabric(slot) => {
                            let at = now + self.lookahead;
                            let ctl = self.edges[self.layout.fabric_port(slot)]
                                .as_mut()
                                .expect("fabric port has an edge");
                            let key = ctl.next_tokens_key();
                            let port = ctl.peer_port;
                            let msg = Msg::AdapterLinkTokens {
                                port,
                                flits: d.flits,
                            };
                            ctl.wire.send(ctx, at, key, msg);
                        }
                        PortClass::Host(l) => {
                            ctx.send(
                                Delay::ZERO,
                                self.host.expect("cube 0's stage fronts the host"),
                                Msg::ReturnRequestTokens {
                                    link: LinkId(l as u8),
                                    flits: d.flits,
                                },
                            );
                        }
                    }
                    // Forward out of the crossbar.
                    match self.layout.classify(d.output) {
                        PortClass::Dev(l) => {
                            let TransitBody::Req(pkt) = d.payload.body else {
                                unreachable!("responses never route to the local device")
                            };
                            ctx.send_at(
                                d.at,
                                self.device,
                                Msg::DeviceRequest {
                                    link: LinkId(l as u8),
                                    pkt,
                                },
                            );
                        }
                        PortClass::Fabric(_) | PortClass::Host(_) => {
                            ctx.send_at(
                                d.at,
                                me,
                                Msg::AdapterEgress {
                                    port: d.output,
                                    msg: d.payload,
                                },
                            );
                        }
                    }
                }
            }
            // Egress serializers: push what tokens allow onto the wires.
            let mut mask = self.tx_dirty;
            self.tx_dirty = 0;
            while mask != 0 {
                let port = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let tx = self.tx[port]
                    .as_mut()
                    .expect("dirty bit set on a serialized port");
                tx.service_into(now, &mut dels);
                for delivery in dels.drain() {
                    // The egress slot frees once the packet is committed
                    // to the wire schedule.
                    if self.sw.return_credits(port, delivery.flits) {
                        self.sw_dirty = true;
                    }
                    match self.layout.classify(port) {
                        PortClass::Fabric(_) => {
                            let ctl = self.edges[port].as_mut().expect("fabric port has an edge");
                            let key = ctl.next_arrive_key();
                            let input = ctl.peer_port;
                            let msg = Msg::AdapterArrive {
                                input,
                                msg: delivery.payload,
                            };
                            ctl.wire.send(ctx, delivery.at, key, msg);
                        }
                        PortClass::Host(l) => {
                            let TransitBody::Resp(pkt) = delivery.payload.body else {
                                unreachable!("only responses exit toward the host")
                            };
                            ctx.send_at(
                                delivery.at,
                                self.host.expect("cube 0's stage fronts the host"),
                                Msg::HostResponse {
                                    link: LinkId(l as u8),
                                    pkt,
                                },
                            );
                        }
                        PortClass::Dev(_) => unreachable!("device ports have no serializer"),
                    }
                }
            }
        }
        self.dep_scratch = deps;
        self.del_scratch = dels;
        self.wake.set(ctx, self.sw.next_wake(now));
    }

    fn transit_stats(&self) -> TransitStats {
        TransitStats {
            forwarded: self.sw.forwarded(),
            arbitration_conflicts: self.sw.arbitration_conflicts(),
            peak_input_flits: (0..self.layout.count())
                .map(|p| self.sw.peak_input_flits(p))
                .collect(),
            link_stats: self.tx.iter().flatten().map(|tx| tx.stats()).collect(),
        }
    }
}

impl Component<Msg> for AdapterComp {
    fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now();
        match msg {
            Msg::AdapterArrive { input, msg } => {
                let entry = SwitchEntry {
                    output: self.route_output(&msg),
                    flits: msg.flits(),
                    payload: msg,
                };
                self.sw
                    .try_enqueue(input, entry)
                    .unwrap_or_else(|_| panic!("pass-through input overflow: tokens violated"));
                self.sw_dirty = true;
            }
            Msg::AdapterEgress { port, msg } => {
                let flits = msg.flits();
                self.tx[port]
                    .as_mut()
                    .expect("egress targets a serialized port")
                    .enqueue(msg, flits);
                self.tx_dirty |= 1 << port;
            }
            Msg::AdapterCredits { output, flits } => {
                // A return into a pool nobody starves on unblocks nothing:
                // time-driven progress is covered by the armed wake, so
                // the pump can be skipped entirely.
                if !self.sw.return_credits(output, flits) {
                    return;
                }
                self.sw_dirty = true;
            }
            Msg::AdapterLinkTokens { port, flits } => {
                let starved = self.tx[port]
                    .as_mut()
                    .expect("tokens target a serialized port")
                    .return_tokens(flits);
                if !starved {
                    return;
                }
                self.tx_dirty |= 1 << port;
            }
            Msg::AdapterResetWindow => {
                self.probe.reset_window(now);
                return;
            }
            _ => unreachable!("message addressed elsewhere reached a pass-through stage"),
        }
        self.pump(now, ctx);
    }

    fn on_wake(&mut self, token: WakeToken, ctx: &mut Ctx<'_, Msg>) {
        if self.wake.fired(token) {
            self.sw_dirty = true;
            let now = ctx.now();
            self.pump(now, ctx);
        }
    }

    fn name(&self) -> &str {
        "passthrough"
    }
}

/// The internal device→pass-through handoff: the device's upstream
/// serializer feeds the crossbar at the logic layer's datapath rate
/// (16 B / 0.8 ns = 20 GB/s) with no SerDes or protocol overhead — the
/// real external link is modelled by the pass-through stage's own
/// serializers.
fn internal_handoff_link(input_buffer_flits: u32) -> LinkConfig {
    LinkConfig {
        width: LinkWidth::Full,
        lane_gbps: 10.0,
        serdes_latency: Delay::ZERO,
        protocol_overhead: 0.0,
        input_buffer_flits,
        min_packet_time: Delay::ZERO,
    }
}

/// Everything needed to build any engine domain of a fabric, computed
/// once up front. `Send + Sync` so worker threads can build their own
/// engines from a shared reference — engines themselves hold `Rc`-based
/// telemetry and are constructed inside the thread that runs them.
struct BuildPlan {
    cfg: FabricConfig,
    dev_cfg: DeviceConfig,
    host_cfg: HostConfig,
    specs: Vec<FabricPortSpec>,
    routes: RouteTable,
    layouts: Vec<AdapterLayout>,
    /// Prefix sums of per-cube neighbor counts: the global index of cube
    /// `c`'s directed edge `slot` is `edge_base[c] + slot`, from which
    /// both of the edge's keyed channel ids derive.
    edge_base: Vec<usize>,
    /// The device's per-link request token pool (input credit of device
    /// crossbar ports).
    req_tokens: u32,
    n: usize,
    /// Deterministic link-fault injection, if any ([`FabricSim::with_faults`]).
    /// `None` keeps every link on the zero-cost fault-free path.
    faults: Option<Arc<FaultPlan>>,
}

/// One engine domain, built and run on a single thread: its engine, the
/// components it owns, and the outboxes of its outgoing cross-domain
/// edges (ascending `(cube, slot)` order — the channel wiring in
/// `run_parallel` enumerates edges identically).
struct DomainParts {
    engine: Engine<Msg>,
    host: Option<ComponentId>,
    devices: Vec<ComponentId>,
    adapters: Vec<ComponentId>,
    /// The cubes this domain owns, ascending.
    cubes: Vec<usize>,
    outboxes: Vec<Outbox>,
}

/// Arms one link transmitter with the build plan's fault injection, if
/// the plan singles this link out. No plan, or a plan without a spec for
/// this key, leaves the transmitter on its zero-cost fault-free path.
fn arm_faults(plan: &BuildPlan, link: &mut LinkTx<TransitMsg>, key: LinkKey, cfg: &LinkConfig) {
    let Some(fp) = &plan.faults else { return };
    let Some(inj) = fp.injector(key) else { return };
    link.set_faults(inj, RetryTuning::derive(cfg).with_degrade_after(fp.degrade));
    link.set_trace_identity(|m: &TransitMsg| m.identity());
}

/// Builds domain `dom` of the partition `dom_of`: the host (domain 0
/// only), one device per owned cube and — multi-cube — one pass-through
/// stage per owned cube, with fabric edges wired locally inside the
/// domain and through outboxes across domains. With `dom_of` all zeros
/// this builds the complete serial system.
fn build_domain(plan: &BuildPlan, probe: &Probe, dom_of: &[usize], dom: usize) -> DomainParts {
    let n = plan.n;
    let include_host = dom == 0;
    let cubes: Vec<usize> = (0..n).filter(|&c| dom_of[c] == dom).collect();
    assert!(!cubes.is_empty(), "every domain owns at least one cube");
    let capacity = usize::from(include_host) + cubes.len() * if n > 1 { 2 } else { 1 };
    let mut engine = Engine::with_capacity(capacity);

    let host = include_host.then(|| {
        let ports: Vec<Port> = plan
            .specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let seed = plan
                    .cfg
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64 + 1);
                Port::new(PortId(i as u8), (spec.source)(seed), spec.tags)
                    .with_targeting(spec.targeting)
            })
            .collect();
        let mut model = HostModel::new(plan.host_cfg.clone(), ports);
        model.attach_probe(probe);
        let period = model.config().fpga_period;
        engine.add_component(Box::new(HostComp {
            model,
            down: None,
            mode: RunMode::Stream,
            period,
            tick: AutoWake::new(),
            measure_start: Time::ZERO,
            measure_end: None,
            probe: probe.clone(),
        }))
    });

    let devices: Vec<ComponentId> = cubes
        .iter()
        .map(|&c| {
            let mut device = HmcDevice::new(plan.dev_cfg.clone());
            device.attach_probe(probe, c as u8);
            let up = (n == 1).then(|| Upstream::Host(host.expect("single-cube host")));
            engine.add_component(Box::new(DeviceComp {
                device,
                up,
                wake: AutoWake::new(),
            }))
        })
        .collect();

    if n == 1 {
        // The paper's single-cube system: host and device wired directly,
        // exactly as before the fabric existed.
        let h = host.expect("single-cube systems keep the host in domain 0");
        engine
            .component_mut::<HostComp>(h)
            .expect("host registered")
            .down = Some(Downstream::Direct { device: devices[0] });
        return DomainParts {
            engine,
            host,
            devices,
            adapters: Vec::new(),
            cubes,
            outboxes: Vec::new(),
        };
    }

    // Multi-cube: one pass-through stage per owned cube.
    let adapters: Vec<ComponentId> = cubes
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let layout = plan.layouts[c].clone();
            let count = layout.count();
            debug_assert!(count <= 64, "tx dirty mask covers 64 crossbar ports");
            let sw_cfg = SwitchConfig {
                inputs: count,
                outputs: count,
                input_capacity_flits: plan.cfg.hop.input_capacity_flits,
                hop_latency: plan.cfg.hop.passthrough_latency,
                flit_time: plan.cfg.hop.flit_time,
            };
            let mut credits = vec![0u32; count];
            let mut tx: Vec<Option<LinkTx<TransitMsg>>> = Vec::with_capacity(count);
            for (p, credit) in credits.iter_mut().enumerate() {
                match layout.classify(p) {
                    PortClass::Dev(_) => {
                        // Downstream buffer: the device's link RX (its
                        // request token pool).
                        *credit = plan.req_tokens;
                        tx.push(None);
                    }
                    PortClass::Fabric(slot) => {
                        *credit = plan.cfg.hop.egress_capacity_flits;
                        let link_cfg = LinkConfig {
                            input_buffer_flits: plan.cfg.hop.input_capacity_flits,
                            ..plan.cfg.hop.link
                        };
                        let mut link = LinkTx::new(&link_cfg);
                        link.set_probe(probe.clone(), c as u8, p as u8, LinkDir::Transit);
                        let peer = layout.neighbors[slot];
                        arm_faults(plan, &mut link, LinkKey::edge(c as u8, peer.0), &link_cfg);
                        tx.push(Some(link));
                    }
                    PortClass::Host(l) => {
                        *credit = plan.cfg.hop.egress_capacity_flits;
                        // Toward the host: the cube's own external link
                        // model, tokens guarding the host RX buffer — as
                        // the device's serializer does on a single-cube
                        // system.
                        let link_cfg = LinkConfig {
                            min_packet_time: Delay::ZERO,
                            ..plan.cfg.cube.link
                        };
                        let mut link = LinkTx::new(&link_cfg);
                        link.set_probe(probe.clone(), c as u8, p as u8, LinkDir::Response);
                        arm_faults(plan, &mut link, LinkKey::host(l as u8), &link_cfg);
                        tx.push(Some(link));
                    }
                }
            }
            let caps = vec![plan.cfg.hop.input_capacity_flits; count];
            let mut sw = SwitchCore::with_input_capacities(sw_cfg, &caps, &credits);
            sw.set_probe(probe.clone(), c as u8);
            engine.add_component(Box::new(AdapterComp {
                cube: CubeId(c as u8),
                layout,
                routes: plan.routes.clone(),
                sw,
                tx,
                edges: (0..count).map(|_| None).collect(),
                device: devices[i],
                host,
                lookahead: plan.cfg.lookahead(),
                sw_dirty: false,
                tx_dirty: 0,
                wake: AutoWake::new(),
                dep_scratch: Departures::new(),
                del_scratch: Deliveries::new(),
                probe: probe.clone(),
            }))
        })
        .collect();

    // Wire the fabric edges: local neighbors get a direct component wire,
    // cross-domain neighbors an outbox. Outboxes are created in ascending
    // (cube, slot) order so they pair index-for-index with the channels
    // run_parallel enumerates in the same order.
    let mut outboxes: Vec<Outbox> = Vec::new();
    for (i, &c) in cubes.iter().enumerate() {
        let layout = &plan.layouts[c];
        let mut ctls: Vec<(usize, EdgeCtl)> = Vec::with_capacity(layout.neighbors.len());
        for (slot, &peer) in layout.neighbors.iter().enumerate() {
            let port = layout.fabric_port(slot);
            let peer_port = plan.layouts[peer.index()].port_toward(CubeId(c as u8));
            let edge = (plan.edge_base[c] + slot) as u64;
            let wire = if dom_of[peer.index()] == dom {
                let j = cubes
                    .binary_search(&peer.index())
                    .expect("same-domain peer is owned");
                EdgeWire::Local(adapters[j])
            } else {
                let outbox: Outbox = Rc::new(RefCell::new(Vec::new()));
                outboxes.push(outbox.clone());
                EdgeWire::Remote(outbox)
            };
            ctls.push((
                port,
                EdgeCtl {
                    wire,
                    peer_port,
                    arrive_chan: 2 * edge,
                    tokens_chan: 2 * edge + 1,
                    arrive_seq: 0,
                    tokens_seq: 0,
                },
            ));
        }
        let adapter = engine
            .component_mut::<AdapterComp>(adapters[i])
            .expect("adapter registered");
        for (port, ctl) in ctls {
            adapter.edges[port] = Some(ctl);
        }
    }
    for (i, &id) in devices.iter().enumerate() {
        engine
            .component_mut::<DeviceComp>(id)
            .expect("device registered")
            .up = Some(Upstream::Adapter(adapters[i]));
    }
    if let Some(h) = host {
        engine
            .component_mut::<HostComp>(h)
            .expect("host registered")
            .down = Some(Downstream::Fabric {
            adapter: adapters[0],
            host_port_base: plan.layouts[0].host_port(LinkId(0)),
        });
    }
    DomainParts {
        engine,
        host,
        devices,
        adapters,
        cubes,
        outboxes,
    }
}

/// Seeds a freshly built domain with its initial events. The host's kick,
/// warmup reset and stop exist only in domain 0; the per-stage telemetry
/// window reset at warmup is scheduled in *every* domain so shard hubs
/// re-anchor exactly like the serial hub.
fn schedule_initial(parts: &mut DomainParts, kind: RunKind, n: usize) {
    match kind {
        RunKind::Gups { warmup, measure } => {
            let stop_at = Time::ZERO + warmup + measure;
            if let Some(id) = parts.host {
                {
                    let host = parts
                        .engine
                        .component_mut::<HostComp>(id)
                        .expect("host registered");
                    host.mode = RunMode::GupsUntil(stop_at);
                    host.model.set_all_active(true);
                }
                parts.engine.schedule(Time::ZERO, id, Msg::HostKick);
                parts
                    .engine
                    .schedule(Time::ZERO + warmup, id, Msg::HostResetStats);
                parts.engine.schedule(stop_at, id, Msg::HostStop);
            }
            if n > 1 {
                for i in 0..parts.adapters.len() {
                    let a = parts.adapters[i];
                    parts
                        .engine
                        .schedule(Time::ZERO + warmup, a, Msg::AdapterResetWindow);
                }
            }
        }
        RunKind::Streams => {
            if let Some(id) = parts.host {
                parts
                    .engine
                    .component_mut::<HostComp>(id)
                    .expect("host registered")
                    .mode = RunMode::Stream;
                parts.engine.schedule(Time::ZERO, id, Msg::HostKick);
            }
        }
    }
}

/// Parallel-scheduler and worker-pool counters for one run, surfaced
/// next to [`EngineStats`] (and in perfgate output) but kept out of the
/// run report: serial runs report zeros, so folding these into the
/// report would break the byte-identity of `repro --json` across
/// `--domains` settings.
///
/// `rounds`, `windows` and `window_events` are fully deterministic for a
/// given workload and domain count — every window schedule is computed
/// from a published snapshot, never from thread timing — and CI gates
/// them. `workers`, `pool_steals` and `pool_parks` depend on what the
/// shared core budget had free and are telemetry only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Barrier rendezvous rounds the domain scheduler ran (excluding the
    /// final all-quiescent round that ends the run).
    pub rounds: u64,
    /// Total lookahead windows granted across those rounds; one round
    /// grants every domain the same ladder of 1..=32 windows.
    pub windows: u64,
    /// Events dispatched inside parallel windows, summed over domains
    /// (equals the merged [`EngineStats::dispatched`] minus any events a
    /// domain dispatched outside the window loop — in practice, all of
    /// them).
    pub window_events: u64,
    /// Threads the run actually used: 1 (the caller) plus whatever the
    /// shared core budget granted; domains beyond this were multiplexed.
    pub workers: u64,
    /// Work items sweep workers stole from the shared pile while this
    /// run was active (process-wide delta; zero unless a sweep runs
    /// concurrently).
    pub pool_steals: u64,
    /// Workers that parked their core back into the shared budget while
    /// this run was active (its own domain workers included).
    pub pool_parks: u64,
}

impl SchedStats {
    /// Mean lookahead windows granted per rendezvous round — the
    /// adaptive scheduler's whole advantage over one-window-per-round;
    /// `1.0` would mean the ladder never beat the PR 7 baseline.
    pub fn windows_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.windows as f64 / self.rounds as f64
        }
    }

    /// Mean events dispatched per granted window (batch size of one
    /// `run_until`).
    pub fn events_per_window(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.window_events as f64 / self.windows as f64
        }
    }
}

/// Post-run state of one cube, extracted inside its owning thread.
struct CubeHarvest {
    device: DeviceStats,
    census: Vec<(String, u64)>,
    transit: Option<TransitStats>,
}

/// Post-run state of the host (domain 0 only).
struct HostHarvest {
    ports: Vec<PortReport>,
    measure_start: Time,
    measure_end: Option<Time>,
}

/// Everything a worker thread sends back to the caller after every
/// domain it multiplexed quiesces. `Send`, unlike the engines.
struct GroupHarvest {
    cubes: Vec<(usize, CubeHarvest)>,
    engine: EngineStats,
    last: Time,
    hubs: Vec<Hub>,
    window_events: u64,
    /// Present only for the group that owns domain 0.
    host: Option<HostHarvest>,
}

/// The merged result of a run, whatever the domain count.
struct RunOutcome {
    report: RunReport,
    engine: EngineStats,
    sched: SchedStats,
    /// Peak-occupancy census per cube, for `device_peak_census`.
    census: Vec<Vec<(String, u64)>>,
}

fn harvest_cubes(parts: &DomainParts) -> Vec<(usize, CubeHarvest)> {
    parts
        .cubes
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let dev = parts
                .engine
                .component::<DeviceComp>(parts.devices[i])
                .expect("device registered");
            let transit = parts.adapters.get(i).map(|&a| {
                parts
                    .engine
                    .component::<AdapterComp>(a)
                    .expect("adapter registered")
                    .transit_stats()
            });
            (
                c,
                CubeHarvest {
                    device: dev.device.stats(),
                    census: dev.device.peak_census(),
                    transit,
                },
            )
        })
        .collect()
}

fn harvest_host(parts: &DomainParts, targets: &[CubeTargeting]) -> HostHarvest {
    let id = parts.host.expect("domain 0 hosts the host");
    let host = parts
        .engine
        .component::<HostComp>(id)
        .expect("host registered");
    let ports = host
        .model
        .ports()
        .iter()
        .map(|p| PortReport {
            port: p.id(),
            source: p.source_label(),
            issued: p.issued(),
            completed: p.completed(),
            latency: *p.latency(),
            bytes: *p.bytes(),
            reads: p.reads_recorded(),
            writes: p.writes_recorded(),
            cube: targets[p.id().index()].fixed_cube(),
            cube_completions: p.completed_by_cube().to_vec(),
        })
        .collect();
    HostHarvest {
        ports,
        measure_start: host.measure_start,
        measure_end: host.measure_end,
    }
}

/// Sums engine counters across domains. Every field is schedule-invariant
/// — the same components dispatch the same events whichever engine they
/// run on — so the merged stats match a serial run exactly.
fn merge_stats(a: EngineStats, b: EngineStats) -> EngineStats {
    EngineStats {
        dispatched: a.dispatched + b.dispatched,
        pending: a.pending + b.pending,
        wake_fires: a.wake_fires + b.wake_fires,
        wake_cancels: a.wake_cancels + b.wake_cancels,
        scratch_spills: a.scratch_spills + b.scratch_spills,
    }
}

fn assemble(
    host: HostHarvest,
    mut cubes: Vec<(usize, CubeHarvest)>,
    engine: EngineStats,
    sched: SchedStats,
    last: Time,
    n: usize,
) -> RunOutcome {
    cubes.sort_by_key(|&(c, _)| c);
    debug_assert_eq!(cubes.len(), n, "every cube harvested exactly once");
    let sim_end = last;
    let measure_end = host.measure_end.unwrap_or(sim_end);
    let elapsed = measure_end.saturating_since(host.measure_start);
    let census: Vec<Vec<(String, u64)>> = cubes.iter().map(|(_, h)| h.census.clone()).collect();
    let cube_reports: Vec<CubeReport> = cubes
        .into_iter()
        .map(|(c, h)| CubeReport {
            cube: CubeId(c as u8),
            device: h.device,
            transit: h.transit,
        })
        .collect();
    let report = RunReport {
        ports: host.ports,
        elapsed,
        device: cube_reports[0].device.clone(),
        cubes: cube_reports,
        sim_end,
    };
    RunOutcome {
        report,
        engine,
        sched,
        census,
    }
}

/// Maps each incoming cross-domain edge to the pass-through component it
/// injects into.
fn resolve_inlets(inc: Inboxes, parts: &DomainParts) -> Vec<(ComponentId, Receiver<Envelope>)> {
    inc.into_iter()
        .map(|(cube, rx)| {
            let i = parts
                .cubes
                .binary_search(&cube)
                .expect("cross edge targets an owned cube");
            (parts.adapters[i], rx)
        })
        .collect()
}

/// One engine domain as scheduled by a worker thread: its built parts,
/// its channel endpoints, and the running tally of events its windows
/// dispatched. A thread owns one *or several* of these — when the shared
/// core budget grants fewer workers than domains, each thread simulates
/// a contiguous block of domains itself, advancing them in lockstep
/// through the same window levels a dedicated thread would.
struct DomainRun {
    d: usize,
    parts: DomainParts,
    out: Vec<Sender<Envelope>>,
    inc: Vec<(ComponentId, Receiver<Envelope>)>,
    window_events: u64,
}

impl DomainRun {
    /// Injects everything the inbound channels currently hold. The keyed
    /// ordering makes injection timing irrelevant to results, so a drain
    /// may even pick up envelopes from a neighbor running a later window
    /// — they simply schedule early.
    fn drain_inboxes(&mut self) {
        for (target, rx) in &self.inc {
            while let Ok(env) = rx.try_recv() {
                self.parts
                    .engine
                    .schedule_keyed(env.at, *target, env.key, env.msg);
            }
        }
    }

    /// Moves this window's outbox contents onto the cross-domain
    /// channels.
    fn flush_outboxes(&mut self) -> Result<(), BarrierPoisoned> {
        for (outbox, tx) in self.parts.outboxes.iter().zip(&self.out) {
            for env in outbox.borrow_mut().drain(..) {
                if tx.send(env).is_err() {
                    // The receiving domain died; unwind like a poison.
                    return Err(BarrierPoisoned);
                }
            }
        }
        Ok(())
    }
}

/// Deterministic scheduler counters one thread accumulates; every thread
/// computes identical `rounds`/`windows` (the schedule is a pure
/// function of each round's shared snapshot), so the caller keeps only
/// its own.
#[derive(Default)]
struct SchedTally {
    rounds: u64,
    windows: u64,
}

/// Blocks until every domain adjacent to `d` has published completion of
/// window level `level` (its `done` counter passing `level` means levels
/// `0..level` are flushed). Point-to-point: a domain waits only on its
/// neighbors, never on the whole fabric — the reason multi-window rounds
/// beat per-window barriers. Spins with periodic yields, polling the
/// barrier's poison flag so a panicked neighbor can't strand the wait.
fn wait_level(
    d: usize,
    dplan: &DomainPlan,
    done: &[AtomicU64],
    level: u64,
    barrier: &PhaseBarrier,
) -> Result<(), BarrierPoisoned> {
    for (f, &dist) in dplan.dist[d].iter().enumerate() {
        if dist != 1 {
            continue;
        }
        let mut spins = 0u32;
        while done[f].load(Ordering::Acquire) < level {
            if barrier.is_poisoned() {
                return Err(BarrierPoisoned);
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(1024) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
    Ok(())
}

/// The adaptive conservative scheduler: advances a thread's domains
/// through multi-window rounds until global quiescence.
///
/// Each round: publish every owned engine's earliest pending event time,
/// meet at barrier A, read everyone's bound, stop if all engines are
/// empty (no envelope can be in flight then — every send was flushed
/// before the previous barrier B and injected right after it). Otherwise
/// project the whole round's window ladder from the snapshot
/// ([`plan_windows`]) and run it: window `k` of a domain first waits for
/// its neighbors to finish window `k-1` (per-domain `done` counters —
/// the only synchronization inside a round), drains their envelopes,
/// runs to its ladder horizon, flushes its outboxes and publishes its
/// own level. Barrier B then orders every send of the round before the
/// final drain, and the next round begins. `runs` must be sorted by
/// domain id: a thread's own earlier domains satisfy the level wait by
/// construction, so multiplexed groups can never self-deadlock.
fn run_group(
    runs: &mut [DomainRun],
    dplan: &DomainPlan,
    mins: &[AtomicU64],
    done: &[AtomicU64],
    barrier: &PhaseBarrier,
    l: u64,
    tally: &mut SchedTally,
) -> Result<(), BarrierPoisoned> {
    let count = dplan.count;
    let mut snapshot = vec![0u64; count];
    let mut base = 0u64;
    loop {
        for r in runs.iter_mut() {
            let next = r
                .parts
                .engine
                .next_event_time()
                .map_or(u64::MAX, |t| t.as_ps());
            mins[r.d].store(next, Ordering::Release);
        }
        barrier.wait()?;
        for (slot, m) in snapshot.iter_mut().enumerate() {
            *m = mins[slot].load(Ordering::Acquire);
        }
        if snapshot.iter().all(|&m| m == u64::MAX) {
            return Ok(());
        }
        let ladder = plan_windows(&snapshot, &dplan.dist, l);
        tally.rounds += 1;
        tally.windows += ladder.len() as u64;
        if runs.iter().any(|r| r.d == 0) {
            // Lead group only, so the process-wide watchdog progress
            // counters count rounds once, not once per worker.
            crate::watchdog::note_round();
            crate::watchdog::note_windows(ladder.len() as u64);
        }
        for (k, horizons) in ladder.iter().enumerate() {
            let level = base + k as u64;
            for idx in 0..runs.len() {
                let spills = SpillSection::open();
                let r = &mut runs[idx];
                if k > 0 {
                    wait_level(r.d, dplan, done, level, barrier)?;
                    r.drain_inboxes();
                }
                let before = r.parts.engine.stats().dispatched;
                r.parts.engine.run_until(Time::from_ps(horizons[r.d]));
                r.window_events += r.parts.engine.stats().dispatched - before;
                r.flush_outboxes()?;
                done[r.d].store(level + 1, Ordering::Release);
                spills.close(runs, idx);
            }
        }
        base += ladder.len() as u64;
        barrier.wait()?;
        for idx in 0..runs.len() {
            let spills = SpillSection::open();
            runs[idx].drain_inboxes();
            spills.close(runs, idx);
        }
    }
}

/// Attributes the scratch spills of one per-engine code section to that
/// engine alone. [`EngineStats::scratch_spills`] derives from a
/// thread-local counter, which is exact while each engine owns its
/// thread; when one thread multiplexes several domains, every section
/// run on behalf of engine `idx` must declare its spill delta *foreign*
/// to the sibling engines, or their counts (and the run's merged total)
/// drift from the serial run's.
struct SpillSection {
    before: u64,
}

impl SpillSection {
    fn open() -> SpillSection {
        SpillSection {
            before: hmc_des::inline::spill_allocs(),
        }
    }

    /// Charges the section's spills to `runs[idx]` by absorbing them
    /// into every *other* run's baseline.
    fn close(self, runs: &mut [DomainRun], idx: usize) {
        let delta = hmc_des::inline::spill_allocs() - self.before;
        if delta == 0 {
            return;
        }
        for (j, other) in runs.iter_mut().enumerate() {
            if j != idx {
                other.parts.engine.absorb_foreign_spills(delta);
            }
        }
    }
}

/// Builds one domain into a [`DomainRun`]: engine and components, initial
/// events, channel endpoints resolved onto the owned adapters.
fn make_run(
    plan: &BuildPlan,
    kind: RunKind,
    probe: &Probe,
    dplan: &DomainPlan,
    d: usize,
    out: Vec<Sender<Envelope>>,
    inc: Inboxes,
) -> DomainRun {
    let mut parts = build_domain(plan, probe, &dplan.of_cube, d);
    schedule_initial(&mut parts, kind, plan.n);
    let inc = resolve_inlets(inc, &parts);
    debug_assert_eq!(parts.outboxes.len(), out.len(), "one channel per outbox");
    DomainRun {
        d,
        parts,
        out,
        inc,
        window_events: 0,
    }
}

/// One worker thread's whole life: build every domain of its group (each
/// with a telemetry shard hub mirroring the caller's hub config, except
/// domain 0 which — when `main_probe` is given — feeds the caller's hub
/// directly), run the group scheduler, harvest. The poison guard is
/// installed before the builds so a panic anywhere releases the other
/// threads; a poisoned run still harvests what it has — the caller's
/// join of the panicked thread re-raises. The caller runs its own group
/// through this same function on the calling thread.
#[allow(clippy::too_many_arguments)]
fn run_group_thread(
    plan: &BuildPlan,
    kind: RunKind,
    seats: Vec<(usize, Vec<Sender<Envelope>>, Inboxes)>,
    dplan: &DomainPlan,
    mins: &[AtomicU64],
    done: &[AtomicU64],
    barrier: &PhaseBarrier,
    l: u64,
    shard_cfg: Option<HubConfig>,
    main_probe: Option<&Probe>,
    targets: Option<&[CubeTargeting]>,
) -> (GroupHarvest, SchedTally) {
    let _guard = barrier.guard();
    let shards: Vec<(Option<Rc<RefCell<Hub>>>, Probe)> = seats
        .iter()
        .map(|&(d, _, _)| {
            if d == 0 {
                if let Some(p) = main_probe {
                    return (None, p.clone());
                }
            }
            match shard_cfg {
                Some(cfg) => {
                    let hub = Hub::shared(cfg);
                    let probe = Probe::attached(&hub);
                    (Some(hub), probe)
                }
                None => (None, Probe::off()),
            }
        })
        .collect();
    let mut runs: Vec<DomainRun> = Vec::new();
    for ((d, out, inc), (_, probe)) in seats.into_iter().zip(&shards) {
        let spills = SpillSection::open();
        runs.push(make_run(plan, kind, probe, dplan, d, out, inc));
        // Construction spills belong to the engine just built; the
        // already-built siblings baselined earlier and must not see them.
        let idx = runs.len() - 1;
        spills.close(&mut runs, idx);
    }
    let mut tally = SchedTally::default();
    let _ = run_group(&mut runs, dplan, mins, done, barrier, l, &mut tally);

    // Engine counters are snapshotted before any other harvesting so a
    // scratch spill during a sibling's harvest can't leak into them.
    let engine_stats: Vec<EngineStats> = runs.iter().map(|r| r.parts.engine.stats()).collect();
    let mut cubes = Vec::new();
    let mut engine = EngineStats::default();
    let mut last = Time::ZERO;
    let mut window_events = 0u64;
    let mut host = None;
    for (r, stats) in runs.iter().zip(engine_stats) {
        cubes.extend(harvest_cubes(&r.parts));
        engine = merge_stats(engine, stats);
        last = last.max(r.parts.engine.last_dispatched_at());
        window_events += r.window_events;
        if r.parts.host.is_some() {
            host = Some(harvest_host(
                &r.parts,
                targets.expect("the host's group passes port targets"),
            ));
        }
    }
    drop(runs);
    let hubs = shards
        .into_iter()
        .filter_map(|(hub, probe)| {
            drop(probe);
            hub.map(|rc| {
                Rc::try_unwrap(rc)
                    .map(RefCell::into_inner)
                    .unwrap_or_else(|rc| rc.borrow().clone())
            })
        })
        .collect();
    (
        GroupHarvest {
            cubes,
            engine,
            last,
            hubs,
            window_events,
            host,
        },
        tally,
    )
}

/// A complete simulated measurement system: FPGA host plus a network of
/// HMC cubes on a deterministic event engine — or, with
/// [`FabricSim::with_domains`], on several engines advancing in parallel
/// under conservative lookahead, with byte-identical results.
///
/// One `FabricSim` performs one run ([`FabricSim::run_gups`] or
/// [`FabricSim::run_streams`]) and is then consumed by the report.
///
/// # Examples
///
/// ```
/// use hmc_des::Delay;
/// use hmc_fabric::{CubeId, FabricConfig, FabricPortSpec, FabricSim};
/// use hmc_host::GupsOp;
/// use hmc_mapping::AccessPattern;
/// use hmc_packet::PayloadSize;
///
/// // Two chained cubes; one port hammers the far cube.
/// let cfg = FabricConfig::chain(42, 2);
/// let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.cube.map);
/// let far = FabricPortSpec::gups(filter, GupsOp::Read(PayloadSize::B64), CubeId(1));
/// let report = FabricSim::new(cfg, vec![far])
///     .run_gups(Delay::from_us(5), Delay::from_us(20));
/// assert!(report.total_accesses() > 0);
/// assert_eq!(report.cubes.len(), 2);
/// ```
pub struct FabricSim {
    plan: BuildPlan,
    probe: Probe,
    domains: usize,
    port_targets: Vec<CubeTargeting>,
    outcome: Option<RunOutcome>,
    started: bool,
}

impl FabricSim {
    /// Builds a fabric system with one port per spec.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, `specs` is empty, a spec
    /// statically targets a cube outside the fabric, or an addressed
    /// spec's map disagrees with the fabric's cube count.
    pub fn new(cfg: FabricConfig, specs: Vec<FabricPortSpec>) -> FabricSim {
        FabricSim::with_telemetry(cfg, specs, Probe::off())
    }

    /// Builds a fabric system with a telemetry probe attached to every
    /// component: the host's ports and request serializers, each cube's
    /// device and response serializers, and (multi-cube) the pass-through
    /// stages. With [`Probe::off`] this is exactly [`FabricSim::new`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`FabricSim::new`].
    pub fn with_telemetry(
        cfg: FabricConfig,
        specs: Vec<FabricPortSpec>,
        probe: Probe,
    ) -> FabricSim {
        cfg.validate().expect("valid fabric config");
        assert!(!specs.is_empty(), "a system needs at least one port");
        for s in &specs {
            match s.targeting {
                CubeTargeting::Fixed(cube) => assert!(
                    cube.0 < cfg.cube_count,
                    "port targets {} outside the {}-cube fabric",
                    cube,
                    cfg.cube_count
                ),
                CubeTargeting::Addressed(map) => assert!(
                    map.cube_count() == cfg.cube_count,
                    "port's address map spans {} cube(s) but the fabric has {}",
                    map.cube_count(),
                    cfg.cube_count
                ),
            }
        }
        let n = usize::from(cfg.cube_count);
        let port_targets: Vec<CubeTargeting> = specs.iter().map(|s| s.targeting).collect();

        // Device configuration per mode: in a fabric, the device's
        // upstream serializer becomes the internal handoff into the
        // pass-through stage.
        let dev_cfg: DeviceConfig = if n == 1 {
            cfg.cube.clone()
        } else {
            DeviceConfig {
                link: internal_handoff_link(cfg.hop.input_capacity_flits),
                ..cfg.cube.clone()
            }
        };
        let proto = HmcDevice::new(dev_cfg.clone());
        let req_tokens = proto.request_tokens_per_link();
        let mut host_cfg: HostConfig = cfg.host.clone();
        // Request-direction tokens guard the first receiver's input
        // buffer: the cube's link RX directly, or cube 0's pass-through
        // input.
        host_cfg.link.input_buffer_flits = if n == 1 {
            req_tokens
        } else {
            cfg.hop.input_capacity_flits
        };
        let routes = cfg.routes();
        let dev_links = dev_cfg.link_count();
        let host_links = usize::from(cfg.host.link_count);
        let layouts: Vec<AdapterLayout> = CubeId::all(cfg.cube_count)
            .map(|c| AdapterLayout {
                dev_links,
                neighbors: cfg.topology.neighbors(cfg.cube_count, c),
                host_links: if c == CubeId::HOST { host_links } else { 0 },
            })
            .collect();
        let edge_base: Vec<usize> = layouts
            .iter()
            .scan(0usize, |acc, l| {
                let base = *acc;
                *acc += l.neighbors.len();
                Some(base)
            })
            .collect();

        FabricSim {
            plan: BuildPlan {
                cfg,
                dev_cfg,
                host_cfg,
                specs,
                routes,
                layouts,
                edge_base,
                req_tokens,
                n,
                faults: None,
            },
            probe,
            domains: 1,
            port_targets,
            outcome: None,
            started: false,
        }
    }

    /// Requests the run be partitioned into up to `domains` per-cube
    /// engine domains advancing in parallel (clamped to the cube count;
    /// `1` — the default — runs serially). Results are byte-identical
    /// for every setting. Traced runs, single-cube systems and
    /// zero-lookahead configurations always fall back to serial.
    pub fn with_domains(mut self, domains: usize) -> FabricSim {
        self.domains = domains.max(1);
        self
    }

    /// Arms deterministic link-fault injection ([`FaultPlan`]) on the
    /// fabric. Every armed link transmitter runs the HMC retry protocol:
    /// CRC-failed transmissions are retried from a bounded retry buffer
    /// (each failure paying the wasted wire time plus the
    /// ErrorAbort/StartRetry turnaround), transient down windows stall
    /// the wire, and — past the plan's degrade threshold — lanes fall to
    /// half width. Because the injector draws per `(link, flit-sequence)`
    /// and failures only push the eager wire schedule *later*, faulty
    /// runs stay byte-identical across every `--domains`/`--threads`
    /// setting, exactly like fault-free ones.
    ///
    /// Dead edges (`dead=A-B`) reroute the fabric around the failed link
    /// where the topology allows it (a ring sends traffic the long way);
    /// where it does not (chain, star), this returns a loud error naming
    /// the unreachable cube. A plan with no dead edges leaves the
    /// calibrated routing untouched.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the plan is internally invalid ([`FaultPlan`]
    /// validation), names a dead edge outside the fabric, or the dead
    /// edges disconnect it.
    pub fn with_faults(mut self, faults: FaultPlan) -> Result<FabricSim, String> {
        faults.validate()?;
        if !faults.dead_edges.is_empty() {
            // Reroute around the dead links. Only then: `avoiding`'s BFS
            // picks different (equally minimal) ring tie-breaks than the
            // calibrated clockwise table, and a no-dead-edge plan must
            // not perturb the fault-free schedule.
            self.plan.routes = RouteTable::avoiding(
                self.plan.cfg.topology,
                self.plan.cfg.cube_count,
                &faults.dead_edges,
            )?;
        }
        self.plan.faults = Some(Arc::new(faults));
        Ok(self)
    }

    /// Runs the GUPS firmware: every port generates random requests for
    /// `warmup + measure`, monitors reset after `warmup`, and the
    /// measurement freezes at the end while in-flight traffic drains.
    ///
    /// # Panics
    ///
    /// Panics if the system was already run.
    pub fn run_gups(&mut self, warmup: Delay, measure: Delay) -> RunReport {
        self.execute(RunKind::Gups { warmup, measure })
    }

    /// Runs the multi-port stream firmware: every port replays its trace
    /// as fast as tags allow; the run ends when all responses are home.
    ///
    /// # Panics
    ///
    /// Panics if the system was already run.
    pub fn run_streams(&mut self) -> RunReport {
        self.execute(RunKind::Streams)
    }

    fn execute(&mut self, kind: RunKind) -> RunReport {
        assert!(!self.started, "a FabricSim performs a single run");
        self.started = true;
        let n = self.plan.n;
        // Packet-lifecycle tracing samples by issue order, which only the
        // serial schedule preserves; traced runs stay on one engine.
        let traced = self
            .probe
            .hub_config()
            .is_some_and(|c| c.trace_sample.is_some());
        let lookahead = self.plan.cfg.lookahead().as_ps();
        let d_count = if traced || n <= 1 || lookahead == 0 {
            1
        } else {
            self.domains.min(n)
        };
        let outcome = if d_count <= 1 {
            self.run_serial(kind)
        } else {
            self.run_parallel(kind, d_count)
        };
        let report = outcome.report.clone();
        self.outcome = Some(outcome);
        report
    }

    fn run_serial(&mut self, kind: RunKind) -> RunOutcome {
        let dom_of = vec![0usize; self.plan.n];
        let mut parts = build_domain(&self.plan, &self.probe, &dom_of, 0);
        schedule_initial(&mut parts, kind, self.plan.n);
        parts.engine.run_to_quiescence();
        let host = harvest_host(&parts, &self.port_targets);
        let cubes = harvest_cubes(&parts);
        let engine = parts.engine.stats();
        let last = parts.engine.last_dispatched_at();
        assemble(
            host,
            cubes,
            engine,
            SchedStats::default(),
            last,
            self.plan.n,
        )
    }

    fn run_parallel(&mut self, kind: RunKind, want: usize) -> RunOutcome {
        let plan = &self.plan;
        let probe = &self.probe;
        let targets = &self.port_targets;
        let n = plan.n;
        let dplan = DomainPlan::new(n, want, |c| {
            plan.layouts[c]
                .neighbors
                .iter()
                .map(|nb| nb.index())
                .collect()
        });
        let d_count = dplan.count;
        let l = plan.cfg.lookahead().as_ps();
        let shard_cfg = probe.hub_config();

        // One unbounded channel per directed cross-domain edge, in
        // ascending (cube, slot) order — the order build_domain creates
        // the matching outboxes in, so sender k pairs with outbox k.
        let mut senders: Vec<Vec<Sender<Envelope>>> = (0..d_count).map(|_| Vec::new()).collect();
        let mut receivers: Vec<Inboxes> = (0..d_count).map(|_| Vec::new()).collect();
        for c in 0..n {
            for &peer in &plan.layouts[c].neighbors {
                let (from, to) = (dplan.of_cube[c], dplan.of_cube[peer.index()]);
                if from != to {
                    let (tx, rx) = channel();
                    senders[from].push(tx);
                    receivers[to].push((peer.index(), rx));
                }
            }
        }
        let mut sender_slots: Vec<Option<Vec<Sender<Envelope>>>> =
            senders.into_iter().map(Some).collect();
        let mut receiver_slots: Vec<Option<Inboxes>> = receivers.into_iter().map(Some).collect();
        let mut seat = |d: usize| {
            (
                d,
                sender_slots[d].take().expect("each domain seats once"),
                receiver_slots[d].take().expect("each domain seats once"),
            )
        };

        // Worker threads come from the shared core budget: one leased
        // core per domain, the caller's own seat included (the caller
        // always runs even when the budget grants nothing). Whatever the
        // lease falls short by is absorbed by multiplexing — each thread
        // owns a contiguous block of domains and steps them through the
        // same window levels a dedicated thread would — so a sweep that
        // drained the budget (an explicit `--threads N`) composes with
        // `--domains` instead of stacking threads on top of it.
        let pool_before = pool::stats();
        let lease = pool::lease(d_count);
        let workers = lease.granted().max(1);
        let groups: Vec<Vec<usize>> = (0..workers)
            .map(|w| (w * d_count / workers..(w + 1) * d_count / workers).collect())
            .collect();

        let mins: Vec<AtomicU64> = (0..d_count).map(|_| AtomicU64::new(0)).collect();
        let done: Vec<AtomicU64> = (0..d_count).map(|_| AtomicU64::new(0)).collect();
        let barrier = Arc::new(PhaseBarrier::new(workers));
        crate::watchdog::register_barrier(&barrier);

        let (harvest, tally) = std::thread::scope(|s| {
            let handles: Vec<_> = groups[1..]
                .iter()
                .map(|group| {
                    let seats: Vec<_> = group.iter().map(|&d| seat(d)).collect();
                    let dplan = &dplan;
                    let mins = &mins[..];
                    let done = &done[..];
                    let barrier = &barrier;
                    let lease = &lease;
                    s.spawn(move || {
                        let out = run_group_thread(
                            plan, kind, seats, dplan, mins, done, barrier, l, shard_cfg, None, None,
                        );
                        // Hand the core back before the join: a sweep
                        // sibling (or a later run's domain lease) can
                        // claim it while the caller is still merging.
                        lease.park_one();
                        out
                    })
                })
                .collect();

            // The caller runs its own group — always containing domain 0,
            // which hosts the host and feeds the caller's probe directly.
            // run_group_thread installs the poison guard before building,
            // so a panic before the first rendezvous can't strand the
            // workers at barrier A.
            let seats: Vec<_> = groups[0].iter().map(|&d| seat(d)).collect();
            let (mut harvest, tally) = run_group_thread(
                plan,
                kind,
                seats,
                &dplan,
                &mins,
                &done,
                &barrier,
                l,
                shard_cfg,
                Some(probe),
                Some(targets),
            );
            for h in handles {
                let (g, _) = h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
                harvest.cubes.extend(g.cubes);
                harvest.engine = merge_stats(harvest.engine, g.engine);
                harvest.last = harvest.last.max(g.last);
                harvest.window_events += g.window_events;
                harvest.hubs.extend(g.hubs);
            }
            (harvest, tally)
        });
        drop(lease);

        for shard in &harvest.hubs {
            probe.absorb_shard(shard);
        }
        let pool_after = pool::stats();
        let sched = SchedStats {
            rounds: tally.rounds,
            windows: tally.windows,
            window_events: harvest.window_events,
            workers: workers as u64,
            pool_steals: pool_after.steals - pool_before.steals,
            pool_parks: pool_after.parks - pool_before.parks,
        };
        let host = harvest.host.expect("domain 0 harvested the host");
        assemble(host, harvest.cubes, harvest.engine, sched, harvest.last, n)
    }

    /// Event-engine counters for this system, merged across domains after
    /// a run: events dispatched, timer fires and cancellations. With the
    /// event-driven core, `dispatched` scales with actual traffic instead
    /// of with simulated FPGA cycles — the regression tests assert it
    /// stays an order of magnitude below per-cycle ticking on low-load
    /// runs. Every counter is schedule-invariant, so the totals match the
    /// serial run whatever the domain count.
    pub fn engine_stats(&self) -> EngineStats {
        self.outcome.as_ref().map(|o| o.engine).unwrap_or_default()
    }

    /// Scheduler and worker-pool counters from the last run. Serial runs
    /// (`domains <= 1`) report the all-zero default; parallel runs report
    /// the deterministic round/window tallies plus worker telemetry. See
    /// [`SchedStats`] for which fields are schedule-invariant.
    pub fn sched_stats(&self) -> SchedStats {
        self.outcome.as_ref().map(|o| o.sched).unwrap_or_default()
    }

    /// Peak-occupancy census of one cube's internal buffers after a run;
    /// a calibration/debugging aid.
    #[doc(hidden)]
    pub fn device_peak_census(&self, cube: CubeId) -> Vec<(String, u64)> {
        self.outcome
            .as_ref()
            .expect("census is read after a run")
            .census[cube.index()]
        .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkFaultTotals;
    use hmc_mapping::{AccessPattern, VaultId};
    use hmc_packet::PayloadSize;
    use hmc_workloads::random_reads_in_banks;

    fn one_read_trace(cfg: &FabricConfig, seed: u64) -> hmc_workloads::Trace {
        random_reads_in_banks(&cfg.cube.map, VaultId(0), 16, PayloadSize::B64, 1, seed)
    }

    #[test]
    fn single_cube_fabric_has_no_passthrough() {
        let cfg = FabricConfig::single(
            hmc_device::DeviceConfig::ac510_hmc(),
            hmc_host::HostConfig::ac510_default(),
            3,
        );
        let trace = one_read_trace(&cfg, 3);
        let report =
            FabricSim::new(cfg, vec![FabricPortSpec::stream(trace, CubeId(0))]).run_streams();
        assert_eq!(report.cubes.len(), 1);
        assert!(report.cubes[0].transit.is_none());
        assert_eq!(report.transit_forwarded(), 0);
    }

    #[test]
    fn remote_requests_are_serviced_by_the_remote_cube() {
        let cfg = FabricConfig::chain(5, 3);
        let trace = random_reads_in_banks(&cfg.cube.map, VaultId(1), 4, PayloadSize::B32, 50, 5);
        let report =
            FabricSim::new(cfg, vec![FabricPortSpec::stream(trace, CubeId(2))]).run_streams();
        assert_eq!(report.ports[0].completed, 50);
        assert_eq!(report.cubes[2].device.requests_received, 50);
        assert_eq!(report.cubes[0].device.requests_received, 0);
        assert_eq!(report.cubes[1].device.requests_received, 0);
        // Transit: cube 0 and cube 1 each forwarded request and response.
        for c in [0, 1] {
            let t = report.cubes[c].transit.as_ref().unwrap();
            assert!(t.forwarded >= 100, "cube {c} forwarded {}", t.forwarded);
        }
    }

    #[test]
    fn fabric_runs_are_deterministic() {
        let run = |seed: u64| {
            let cfg = FabricConfig::star(seed, 4);
            let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.cube.map);
            let specs: Vec<FabricPortSpec> = (0..4)
                .map(|c| {
                    FabricPortSpec::gups(
                        filter,
                        hmc_host::GupsOp::Read(PayloadSize::B64),
                        CubeId(c),
                    )
                })
                .collect();
            let r = FabricSim::new(cfg, specs).run_gups(Delay::from_us(5), Delay::from_us(15));
            (
                r.total_accesses(),
                r.aggregate_latency().total_ps(),
                r.transit_forwarded(),
                r.total_switch_conflicts(),
            )
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn farther_cubes_cost_more_unloaded_latency() {
        let mut prev = 0.0;
        for target in 0..3u8 {
            let cfg = FabricConfig::chain(7, 3);
            let trace = one_read_trace(&cfg, 7);
            let report = FabricSim::new(cfg, vec![FabricPortSpec::stream(trace, CubeId(target))])
                .run_streams();
            let ns = report.mean_latency_ns();
            assert!(
                ns > prev,
                "latency must grow with hop count: cube{target} {ns} ns vs {prev} ns"
            );
            prev = ns;
        }
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn ports_cannot_target_missing_cubes() {
        let cfg = FabricConfig::chain(0, 2);
        let trace = one_read_trace(&cfg, 0);
        let _ = FabricSim::new(cfg, vec![FabricPortSpec::stream(trace, CubeId(5))]);
    }

    #[test]
    #[should_panic(expected = "spans 4 cube(s) but the fabric has 2")]
    fn addressed_map_must_match_the_fabric_size() {
        let cfg = FabricConfig::chain(0, 2);
        let map =
            hmc_mapping::FabricAddressMap::new(hmc_mapping::CubePolicy::Blocked, 4, &cfg.cube.map);
        let trace = one_read_trace(&cfg, 0);
        let _ = FabricSim::new(
            cfg,
            vec![FabricPortSpec::stream(trace, CubeId(0)).addressed(map)],
        );
    }

    #[test]
    fn addressed_ports_derive_cube_from_the_address() {
        use hmc_mapping::{CubePolicy, FabricAddressMap};
        use hmc_packet::GlobalAddress;

        // One stream, explicit global addresses: block 0 in cube 0,
        // block 1 in cube 2, block 2 in cube 1 (blocked map: high bits).
        let cfg = FabricConfig::chain(9, 3);
        let fabric = FabricAddressMap::new(CubePolicy::Blocked, 3, &cfg.cube.map);
        let ops: Vec<hmc_workloads::TraceOp> =
            [(0u64, 0x000u64), (2, 0x080), (1, 0x100), (2, 0x180)]
                .iter()
                .map(|&(cube, local)| {
                    hmc_workloads::TraceOp::read(
                        GlobalAddress::new(cube << 34 | local),
                        hmc_packet::PayloadSize::B64,
                    )
                })
                .collect();
        let trace = hmc_workloads::Trace::from_ops(ops);
        let report = FabricSim::new(
            cfg,
            vec![FabricPortSpec::stream(trace, CubeId(0)).addressed(fabric)],
        )
        .run_streams();
        assert_eq!(report.ports[0].completed, 4);
        assert_eq!(report.cubes[0].device.requests_received, 1);
        assert_eq!(report.cubes[1].device.requests_received, 1);
        assert_eq!(report.cubes[2].device.requests_received, 2);
        // The split stream has no static cube; its per-cube attribution
        // carries the spread instead.
        assert_eq!(report.ports[0].cube, None);
        assert_eq!(report.ports[0].cube_completions[..3], [1, 1, 2]);
        assert_eq!(report.cube_completions(CubeId(2)), 2);
        assert_eq!(report.cubes_hit(), 3);
    }

    #[test]
    fn offload_copies_between_cubes_touch_both_devices() {
        use hmc_mapping::{CubePolicy, FabricAddressMap};
        use hmc_workloads::OffloadSource;

        let cfg = FabricConfig::chain(4, 2);
        let map = cfg.cube.map;
        let fabric = FabricAddressMap::new(CubePolicy::Blocked, 2, &map);
        let blocks = 40u64;
        let spec = FabricPortSpec::from_source(
            move |_| {
                Box::new(OffloadSource::between_cubes(
                    &map,
                    fabric,
                    (CubeId(0), VaultId(0)),
                    (CubeId(1), VaultId(8)),
                    PayloadSize::B128,
                    blocks,
                    8,
                ))
            },
            CubeId(0),
        )
        .addressed(fabric);
        let report = FabricSim::new(cfg, vec![spec]).run_streams();
        // Every pair: the read terminates at cube 0, the dependent write
        // crosses the fabric to cube 1.
        assert_eq!(report.ports[0].completed, 2 * blocks);
        assert_eq!(report.cubes[0].device.requests_received, blocks);
        assert_eq!(report.cubes[1].device.requests_received, blocks);
        assert_eq!(report.total_reads(), blocks);
        assert_eq!(report.total_writes(), blocks);
        assert_eq!(report.ports[0].cube_completions[..2], [blocks, blocks]);
    }

    #[test]
    fn domain_schedules_reproduce_serial_runs_byte_for_byte() {
        let run = |domains: usize| {
            let cfg = FabricConfig::star(21, 4);
            let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.cube.map);
            let specs: Vec<FabricPortSpec> = (0..4)
                .map(|c| {
                    FabricPortSpec::gups(
                        filter,
                        hmc_host::GupsOp::Read(PayloadSize::B64),
                        CubeId(c),
                    )
                })
                .collect();
            let mut sim = FabricSim::new(cfg, specs).with_domains(domains);
            let report = sim.run_gups(Delay::from_us(5), Delay::from_us(15));
            (format!("{report:?}"), sim.engine_stats())
        };
        let serial = run(1);
        assert_eq!(serial, run(2), "2 domains must replay the serial run");
        assert_eq!(serial, run(4), "4 domains must replay the serial run");
    }

    #[test]
    fn offload_runs_identically_under_domains() {
        use hmc_mapping::{CubePolicy, FabricAddressMap};
        use hmc_workloads::OffloadSource;

        let run = |domains: usize| {
            let cfg = FabricConfig::chain(4, 2);
            let map = cfg.cube.map;
            let fabric = FabricAddressMap::new(CubePolicy::Blocked, 2, &map);
            let spec = FabricPortSpec::from_source(
                move |_| {
                    Box::new(OffloadSource::between_cubes(
                        &map,
                        fabric,
                        (CubeId(0), VaultId(0)),
                        (CubeId(1), VaultId(8)),
                        PayloadSize::B128,
                        40,
                        8,
                    ))
                },
                CubeId(0),
            )
            .addressed(fabric);
            let mut sim = FabricSim::new(cfg, vec![spec]).with_domains(domains);
            let report = sim.run_streams();
            (format!("{report:?}"), sim.engine_stats())
        };
        assert_eq!(run(1), run(2), "dependent offload streams must not skew");
    }

    #[test]
    fn single_cube_domains_fall_back_to_serial() {
        let cfg = FabricConfig::single(
            hmc_device::DeviceConfig::ac510_hmc(),
            hmc_host::HostConfig::ac510_default(),
            3,
        );
        let trace = one_read_trace(&cfg, 3);
        let mut sim =
            FabricSim::new(cfg, vec![FabricPortSpec::stream(trace, CubeId(0))]).with_domains(4);
        let report = sim.run_streams();
        assert_eq!(report.ports[0].completed, 1);
        assert!(sim.engine_stats().dispatched > 0);
    }

    #[test]
    fn shard_hubs_merge_to_the_serial_hub() {
        use hmc_telemetry::{Hub, HubConfig};

        let run = |domains: usize| {
            let hub = Hub::shared(HubConfig::default());
            let probe = Probe::attached(&hub);
            let cfg = FabricConfig::chain(13, 4);
            let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.cube.map);
            let specs: Vec<FabricPortSpec> = (0..4)
                .map(|c| {
                    FabricPortSpec::gups(
                        filter,
                        hmc_host::GupsOp::Read(PayloadSize::B64),
                        CubeId(c),
                    )
                })
                .collect();
            let mut sim = FabricSim::with_telemetry(cfg, specs, probe).with_domains(domains);
            sim.run_gups(Delay::from_us(2), Delay::from_us(6));
            let h = hub.borrow();
            (
                h.aggregate_sketch().count(),
                h.completion_bytes().total(),
                h.link_flits().keys().copied().collect::<Vec<_>>(),
                h.source_sketches().len(),
            )
        };
        assert_eq!(run(1), run(4), "shard merge must reproduce the one-hub run");
    }

    fn faulty_gups_report(plan: Option<FaultPlan>, domains: usize) -> RunReport {
        let cfg = FabricConfig::ring(21, 4);
        let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.cube.map);
        let specs: Vec<FabricPortSpec> = (0..4)
            .map(|c| {
                FabricPortSpec::gups(filter, hmc_host::GupsOp::Read(PayloadSize::B128), CubeId(c))
            })
            .collect();
        let mut sim = FabricSim::new(cfg, specs).with_domains(domains);
        if let Some(plan) = plan {
            sim = sim.with_faults(plan).expect("valid fault plan");
        }
        sim.run_gups(Delay::from_us(2), Delay::from_us(8))
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let clean = faulty_gups_report(None, 1);
        let armed = faulty_gups_report(Some(FaultPlan::new(99)), 1);
        assert_eq!(
            format!("{clean:?}"),
            format!("{armed:?}"),
            "a no-op plan must leave the run byte-identical"
        );
        assert_eq!(clean.link_fault_totals(), LinkFaultTotals::default());
    }

    #[test]
    fn faulty_runs_complete_and_count_retries() {
        let plan =
            FaultPlan::new(7).with_all_links(hmc_faults::LinkFaultSpec::ber(1e-5).with_burst(2));
        let report = faulty_gups_report(Some(plan), 1);
        let totals = report.link_fault_totals();
        assert!(totals.crc_errors > 0, "a 1e-5 BER must corrupt something");
        assert_eq!(totals.retries, totals.crc_errors + totals.down_drops);
        assert!(totals.retransmitted_flits >= totals.retries);
        // Graceful: every issued request still completes.
        for p in &report.ports {
            assert_eq!(p.completed, p.issued, "port {} lost requests", p.port.0);
        }
    }

    #[test]
    fn faulty_runs_are_domain_invariant() {
        let plan = || {
            FaultPlan::new(7)
                .with_all_links(hmc_faults::LinkFaultSpec::ber(2e-5))
                .degrade_after(40)
        };
        let serial = format!("{:?}", faulty_gups_report(Some(plan()), 1));
        for domains in [2, 4] {
            let par = format!("{:?}", faulty_gups_report(Some(plan()), domains));
            assert_eq!(serial, par, "--domains {domains} skewed a faulty run");
        }
    }

    #[test]
    fn ring_reroutes_around_a_dead_edge_and_completes() {
        let cfg = FabricConfig::ring(33, 4);
        let trace = random_reads_in_banks(&cfg.cube.map, VaultId(1), 4, PayloadSize::B32, 40, 3);
        let sim = FabricSim::new(cfg, vec![FabricPortSpec::stream(trace, CubeId(1))]);
        let mut sim = sim
            .with_faults(FaultPlan::new(0).with_dead_edge(0, 1))
            .expect("ring survives one dead edge");
        let report = sim.run_streams();
        assert_eq!(report.ports[0].completed, 40);
        // The direct 0-1 hop is dead: traffic reaches cube 1 the long way
        // (0 → 3 → 2 → 1), so cubes 3 and 2 forward it.
        for c in [3usize, 2] {
            let t = report.cubes[c].transit.as_ref().unwrap();
            assert!(t.forwarded > 0, "cube {c} should carry rerouted traffic");
        }
    }

    #[test]
    fn chain_dead_edge_is_a_loud_build_error() {
        let cfg = FabricConfig::chain(1, 3);
        let trace = one_read_trace(&cfg, 1);
        let err = FabricSim::new(cfg, vec![FabricPortSpec::stream(trace, CubeId(0))])
            .with_faults(FaultPlan::new(0).with_dead_edge(1, 2))
            .err()
            .expect("a severed chain must not build");
        assert!(err.contains("unreachable"), "unhelpful error: {err}");
    }
}
