//! Conservative parallel-DES machinery: the partition of a fabric into
//! per-cube engine domains, the lower-bound-timestamp horizon rule that
//! lets each domain advance independently, and the phase barrier the
//! domain scheduler synchronizes window rounds on.
//!
//! The model that makes this sound lives in the fabric simulator: every
//! cube-to-cube message (packet deliveries *and* link-token returns)
//! crosses its edge with at least the fabric link's SerDes latency `L`
//! ([`FabricConfig::lookahead`](crate::FabricConfig::lookahead)). An
//! event a domain dispatches at time `t` can therefore influence an
//! adjacent domain no earlier than `t + L`, and a domain `k` fabric hops
//! away no earlier than `t + k·L`. Each window round, every domain
//! publishes the timestamp of its earliest pending event; the horizon
//! rule below turns those lower bounds into the furthest instant each
//! domain may safely simulate before the next exchange.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// The static partition of a fabric's cubes into engine domains.
///
/// Cubes are split into contiguous blocks (cube ids are assigned along
/// chains and rings, so contiguous blocks minimize cross-domain edges),
/// with the host always co-resident with cube 0 in domain 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DomainPlan {
    /// Number of domains (`1 ..= cube_count`).
    pub count: usize,
    /// Domain of each cube, monotone non-decreasing.
    pub of_cube: Vec<usize>,
    /// `dist[a][b]`: minimum number of *cross-domain* fabric edges on any
    /// path from a cube of domain `a` to a cube of domain `b`, i.e. the
    /// hop distance in the domain-level adjacency graph. Zero on the
    /// diagonal.
    pub dist: Vec<Vec<u32>>,
}

impl DomainPlan {
    /// Partitions `n` cubes into `min(domains, n)` contiguous blocks and
    /// derives the domain-distance matrix from the cube adjacency given
    /// by `neighbors`.
    pub fn new(n: usize, domains: usize, neighbors: impl Fn(usize) -> Vec<usize>) -> DomainPlan {
        let count = domains.clamp(1, n.max(1));
        let of_cube: Vec<usize> = (0..n).map(|c| c * count / n).collect();
        // Domain-level adjacency, then all-pairs BFS (at most 64 domains).
        let mut adj = vec![vec![false; count]; count];
        for c in 0..n {
            for nb in neighbors(c) {
                let (a, b) = (of_cube[c], of_cube[nb]);
                if a != b {
                    adj[a][b] = true;
                    adj[b][a] = true;
                }
            }
        }
        let mut dist = vec![vec![u32::MAX; count]; count];
        for (start, row) in dist.iter_mut().enumerate() {
            row[start] = 0;
            let mut frontier = vec![start];
            let mut depth = 0u32;
            while !frontier.is_empty() {
                depth += 1;
                let mut next = Vec::new();
                for &a in &frontier {
                    for b in 0..count {
                        if adj[a][b] && row[b] == u32::MAX {
                            row[b] = depth;
                            next.push(b);
                        }
                    }
                }
                frontier = next;
            }
        }
        DomainPlan {
            count,
            of_cube,
            dist,
        }
    }
}

/// The furthest instant (in picoseconds) domain `d` may simulate this
/// round, given every domain's earliest-pending-event time (`u64::MAX`
/// when a domain's queue is empty) and the lookahead `l` of one
/// cross-domain edge.
///
/// Two bounds compose, both exclusive (hence the final `- 1`):
///
/// - **Neighbor bound** — domain `e` cannot influence `d` before
///   `mins[e] + dist(e, d) · l`: its earliest dispatch needs at least
///   `dist` cross-domain edges, each adding `≥ l`.
/// - **Echo bound** — `mins[d] + 2·l`: `d`'s own earliest dispatch this
///   round can reach a neighbor at `mins[d] + l` and provoke a reply
///   arriving no earlier than `mins[d] + 2·l`. Without this bound a
///   domain facing only empty neighbors would run to quiescence and
///   then receive replies to its own traffic in its past.
///
/// Progress is guaranteed: for the domain holding the globally minimal
/// `mins`, every bound is at least `mins + l`, so it always dispatches
/// at least its earliest event (`l > 0` is required for that, and the
/// scheduler falls back to serial when the configured lookahead is
/// zero). The published `mins` may be conservative (a cancelled timer's
/// slot counts), which can only shrink horizons, never break them.
pub(crate) fn horizon(d: usize, mins: &[u64], dist_to: &[u32], l: u64) -> u64 {
    debug_assert!(l > 0, "parallel domains need a positive lookahead");
    let mut bound = mins[d].saturating_add(2 * l);
    for (e, &m) in mins.iter().enumerate() {
        if e != d {
            bound = bound.min(m.saturating_add(l.saturating_mul(u64::from(dist_to[e]))));
        }
    }
    bound.saturating_sub(1)
}

/// Upper bound on lookahead windows granted per rendezvous round. One
/// round's schedule is projected from a single `mins` snapshot, so each
/// extra window advances the projection by exactly one lookahead `l`;
/// past a few dozen the windows outrun any real event density and only
/// add handshake overhead. 32 keeps a round's schedule comfortably
/// inside one cache line per domain while cutting barrier rounds by up
/// to the same factor.
pub(crate) const MAX_WINDOWS_PER_ROUND: usize = 32;

/// The adaptive multi-window schedule of one rendezvous round: from a
/// single snapshot of every domain's published earliest-event time,
/// projects a ladder of per-domain horizons `plan[k][d]` — window `k`
/// of domain `d` may run to `plan[k][d]` (inclusive) provided it has
/// received every neighbor's window-`k-1` output first. Every domain
/// computes the identical schedule from the shared snapshot, so the
/// round's window count and horizons are deterministic whatever the
/// thread timing.
///
/// Window 0 is exactly the [`horizon`] rule. Later windows build on a
/// simple invariant: everything domain `f` processes — and therefore
/// everything it can send — in windows `≥ k` has a timestamp strictly
/// above its window-`k-1` horizon (earlier events were either already
/// processed or, by the window-0 argument applied inductively, can
/// never arrive in `f`'s past). A message from neighbor `f`'s window
/// `≥ k` thus reaches `d` no earlier than `plan[k-1][f] + l`, so with
/// windows `< k` delivered,
///
/// ```text
/// plan[k][d] = min over neighbors f of plan[k-1][f] + l    (exclusive,
///                                                           hence the -1
///                                                           baked into
///                                                           horizon and
///                                                           preserved by
///                                                           the +l step)
/// ```
///
/// is safe. Non-neighbor domains need no term: their influence must be
/// relayed by a neighbor, which can only do so in a window the bound
/// already covers. The ladder is monotone (the `dist` triangle
/// inequality makes `plan[1] ≥ plan[0]`, and the step preserves order),
/// and it stops growing once saturated or at [`MAX_WINDOWS_PER_ROUND`].
pub(crate) fn plan_windows(mins: &[u64], dist: &[Vec<u32>], l: u64) -> Vec<Vec<u64>> {
    let count = mins.len();
    let first: Vec<u64> = (0..count).map(|d| horizon(d, mins, &dist[d], l)).collect();
    let mut plan = vec![first];
    while plan.len() < MAX_WINDOWS_PER_ROUND {
        let prev = plan.last().expect("plan starts non-empty");
        let next: Vec<u64> = (0..count)
            .map(|d| {
                (0..count)
                    .filter(|&f| dist[d][f] == 1)
                    .map(|f| prev[f].saturating_add(l))
                    .min()
                    // A domain with no neighbors (single-domain plans in
                    // tests) gains nothing from extra windows.
                    .unwrap_or(prev[d])
            })
            .collect();
        if next == *prev {
            break;
        }
        plan.push(next);
    }
    plan
}

/// Error returned by [`PhaseBarrier::wait`] once the barrier is
/// poisoned: some participant panicked and every domain must unwind
/// instead of deadlocking on a rendezvous that can never complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BarrierPoisoned;

/// A reusable spin-then-yield rendezvous for the domain scheduler.
///
/// `std::sync::Barrier` deadlocks the surviving domains when one worker
/// panics mid-round; this barrier instead carries a poison flag that a
/// panicking participant sets (see [`PhaseBarrier::guard`]) so every
/// `wait` in flight — and every later one — returns an error and the
/// scheduler can unwind. The wait loop spins briefly (window rounds are
/// sub-microsecond on saturated fabrics) and then yields; when the
/// parties outnumber the hardware threads the spin phase is skipped
/// entirely — a waiter that owns the only core can never observe the
/// generation advance until it yields it, so spinning there just burns
/// the scheduler quantum the other domains need.
#[derive(Debug)]
pub(crate) struct PhaseBarrier {
    parties: usize,
    spin_limit: u32,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

impl PhaseBarrier {
    pub fn new(parties: usize) -> PhaseBarrier {
        assert!(parties > 0, "a barrier needs at least one party");
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        let spin_limit = if cores >= parties { 1 << 14 } else { 0 };
        PhaseBarrier {
            parties,
            spin_limit,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Blocks until all parties arrive (or the barrier is poisoned).
    pub fn wait(&self) -> Result<(), BarrierPoisoned> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(BarrierPoisoned);
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Last arriver opens the next generation and releases the rest.
            self.arrived.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if self.poisoned.load(Ordering::Acquire) {
                    return Err(BarrierPoisoned);
                }
                spins += 1;
                if spins < self.spin_limit {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        if self.poisoned.load(Ordering::Acquire) {
            return Err(BarrierPoisoned);
        }
        Ok(())
    }

    /// Marks the barrier poisoned and releases every waiter with an error.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// `true` once any participant poisoned the barrier. The window
    /// handshake loops (which wait on per-domain progress counters, not
    /// on the barrier itself) poll this so a dead neighbor can't strand
    /// them spinning.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// A drop guard that poisons the barrier iff its thread is unwinding.
    /// Every domain loop holds one so a panic anywhere releases all
    /// rendezvous instead of deadlocking them.
    pub fn guard(&self) -> PoisonGuard<'_> {
        PoisonGuard { barrier: self }
    }
}

pub(crate) struct PoisonGuard<'a> {
    barrier: &'a PhaseBarrier,
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.barrier.poison();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn chain_neighbors(n: usize) -> impl Fn(usize) -> Vec<usize> {
        move |c| {
            let mut v = Vec::new();
            if c > 0 {
                v.push(c - 1);
            }
            if c + 1 < n {
                v.push(c + 1);
            }
            v
        }
    }

    #[test]
    fn contiguous_blocks_cover_every_domain() {
        let plan = DomainPlan::new(8, 4, chain_neighbors(8));
        assert_eq!(plan.count, 4);
        assert_eq!(plan.of_cube, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        let plan = DomainPlan::new(5, 4, chain_neighbors(5));
        assert_eq!(plan.count, 4);
        assert_eq!(plan.of_cube, vec![0, 0, 1, 2, 3]);
        // More domains than cubes clamps to one domain per cube.
        let plan = DomainPlan::new(2, 8, chain_neighbors(2));
        assert_eq!(plan.count, 2);
    }

    #[test]
    fn chain_domain_distances_are_hop_counts() {
        let plan = DomainPlan::new(8, 4, chain_neighbors(8));
        assert_eq!(plan.dist[0], vec![0, 1, 2, 3]);
        assert_eq!(plan.dist[3], vec![3, 2, 1, 0]);
    }

    #[test]
    fn sixty_four_cube_mesh_partitions_into_row_domains() {
        // 8×8 mesh adjacency; 8 domains land one grid row per domain.
        let mesh = |c: usize| {
            let (x, y) = (c % 8, c / 8);
            let mut v = Vec::new();
            if x > 0 {
                v.push(c - 1);
            }
            if x < 7 {
                v.push(c + 1);
            }
            if y > 0 {
                v.push(c - 8);
            }
            if y < 7 {
                v.push(c + 8);
            }
            v
        };
        let plan = DomainPlan::new(64, 8, mesh);
        assert_eq!(plan.count, 8);
        for (c, &d) in plan.of_cube.iter().enumerate() {
            assert_eq!(d, c / 8, "row-major blocks put each row in one domain");
        }
        // Adjacent rows are adjacent domains: the distance matrix is the
        // row distance.
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(plan.dist[a][b], a.abs_diff(b) as u32);
            }
        }
    }

    #[test]
    fn star_collapses_to_distance_two() {
        // Star: cube 0 is the hub.
        let plan = DomainPlan::new(4, 4, |c| if c == 0 { vec![1, 2, 3] } else { vec![0] });
        assert_eq!(plan.dist[1], vec![1, 0, 2, 2]);
    }

    #[test]
    fn horizon_respects_neighbor_and_echo_bounds() {
        let l = 55_000u64;
        let dist = [0u32, 1, 2];
        // Neighbor bound binds: domain 1 holds the earliest event.
        let mins = [400_000u64, 100_000, 900_000];
        assert_eq!(horizon(0, &mins, &dist, l), 100_000 + l - 1);
        // Empty neighbors: only the echo bound remains.
        let mins = [100_000u64, u64::MAX, u64::MAX];
        assert_eq!(horizon(0, &mins, &dist, l), 100_000 + 2 * l - 1);
        // The globally minimal domain always clears its own event.
        let mins = [100_000u64, 400_000, 900_000];
        assert!(horizon(0, &mins, &dist, l) >= 100_000);
    }

    #[test]
    fn horizon_saturates_on_empty_fabrics() {
        let mins = [u64::MAX, u64::MAX];
        assert_eq!(horizon(0, &mins, &[0, 1], 55_000), u64::MAX - 1);
    }

    #[test]
    fn barrier_synchronizes_and_reuses() {
        let barrier = PhaseBarrier::new(4);
        let rounds = 200;
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for r in 0..rounds {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait().expect("not poisoned");
                        // Everyone sees all arrivals of round r.
                        assert!(counter.load(Ordering::Relaxed) >= (r + 1) * 4);
                        barrier.wait().expect("not poisoned");
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), rounds * 4);
    }

    /// A toy conservative simulation over the real [`horizon`] rule and a
    /// real [`DomainPlan`]: abstract events that deterministically spawn
    /// children (same-domain children at `t + small`, cross-domain
    /// children at `t + L + extra` — the invariant the fabric model
    /// guarantees). The serial reference processes one global queue in
    /// `(time, domain, id)` order; the parallel run advances domains in a
    /// *random order* each window round, each to its horizon, exchanging
    /// cross-domain spawns through per-domain mailboxes drained between
    /// rounds. For every interleaving, each domain must process exactly
    /// the serial run's per-domain subsequence — any horizon overshoot
    /// would let a domain run past a message still in flight and diverge.
    #[test]
    fn any_window_interleaving_matches_serial_delivery_order() {
        const L: u64 = 55;
        let plan = DomainPlan::new(8, 4, chain_neighbors(8));
        let d_count = plan.count;

        // Deterministic per-event behavior: everything an event does is
        // derived from its own identity, never from processing order.
        fn mix(mut x: u64) -> u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        }
        // `(dst, at, child_id)` of the event's spawned child, if any.
        // Children stay on the domain adjacency (itself or a chain
        // neighbor): like fabric packets, influence travels edge by edge,
        // paying at least `L` per cross-domain edge — the premise of the
        // horizon's neighbor bound.
        let spawn = |d: usize, t: u64, id: u64, budget: u32| -> Option<(usize, u64, u64)> {
            if budget == 0 {
                return None;
            }
            let h = mix(id ^ t.rotate_left(32));
            let dst = match h % 4 {
                0 => d.saturating_sub(1),
                1 => (d + 1).min(d_count - 1),
                _ => d,
            };
            let at = if dst == d {
                t + 1 + (h >> 8) % 7
            } else {
                t + L + (h >> 8) % 97
            };
            Some((dst, at, mix(h)))
        };
        let seeds: Vec<(usize, u64, u64, u32)> = (0..d_count)
            .flat_map(|d| (0..3u64).map(move |k| (d, 10 + 13 * k, mix(0xACE0 + k + d as u64), 24)))
            .collect();

        // Serial reference: one global queue in (time, domain, id) order.
        let serial: Vec<Vec<(u64, u64)>> = {
            let mut queue: std::collections::BTreeSet<(u64, usize, u64, u32)> =
                seeds.iter().map(|&(d, t, id, b)| (t, d, id, b)).collect();
            let mut log = vec![Vec::new(); d_count];
            while let Some(&(t, d, id, b)) = queue.iter().next() {
                queue.remove(&(t, d, id, b));
                log[d].push((t, id));
                if let Some((dst, at, cid)) = spawn(d, t, id, b) {
                    queue.insert((at, dst, cid, b - 1));
                }
            }
            log
        };
        assert!(serial.iter().map(Vec::len).sum::<usize>() > 200);

        for trial in 0..25u64 {
            let mut rng = mix(0xBEEF ^ trial);
            let mut queues: Vec<std::collections::BTreeSet<(u64, u64, u32)>> =
                vec![Default::default(); d_count];
            for &(d, t, id, b) in &seeds {
                queues[d].insert((t, id, b));
            }
            let mut mailbox: Vec<Vec<(u64, u64, u32)>> = vec![Vec::new(); d_count];
            let mut log = vec![Vec::new(); d_count];
            loop {
                for (q, mb) in queues.iter_mut().zip(&mut mailbox) {
                    q.extend(mb.drain(..));
                }
                let mins: Vec<u64> = queues
                    .iter()
                    .map(|q| q.iter().next().map_or(u64::MAX, |&(t, _, _)| t))
                    .collect();
                if mins.iter().all(|&m| m == u64::MAX) {
                    break;
                }
                // A random domain order each round: the protocol must be
                // insensitive to which domain's window runs first.
                let mut order: Vec<usize> = (0..d_count).collect();
                for i in (1..d_count).rev() {
                    rng = mix(rng);
                    order.swap(i, (rng as usize) % (i + 1));
                }
                for &d in &order {
                    let h = horizon(d, &mins, &plan.dist[d], L);
                    while let Some(&(t, id, b)) = queues[d].iter().next() {
                        if t > h {
                            break;
                        }
                        queues[d].remove(&(t, id, b));
                        log[d].push((t, id));
                        if let Some((dst, at, cid)) = spawn(d, t, id, b) {
                            if dst == d {
                                queues[d].insert((at, cid, b - 1));
                            } else {
                                mailbox[dst].push((at, cid, b - 1));
                            }
                        }
                    }
                }
            }
            assert_eq!(log, serial, "interleaving {trial} diverged from serial");
        }
    }

    #[test]
    fn window_ladder_starts_at_the_horizon_and_steps_by_lookahead() {
        let l = 55u64;
        let dplan = DomainPlan::new(8, 4, chain_neighbors(8));
        let mins = vec![100u64, 130, 90, 200];
        let plan = plan_windows(&mins, &dplan.dist, l);
        let first: Vec<u64> = (0..4)
            .map(|d| horizon(d, &mins, &dplan.dist[d], l))
            .collect();
        assert_eq!(plan[0], first, "window 0 is the PR 7 horizon rule");
        for k in 1..plan.len() {
            for d in 0..4 {
                assert!(plan[k][d] >= plan[k - 1][d], "ladder is monotone");
                let step = (0..4)
                    .filter(|&f| dplan.dist[d][f] == 1)
                    .map(|f| plan[k - 1][f].saturating_add(l))
                    .min()
                    .unwrap();
                assert_eq!(plan[k][d], step, "each rung is the neighbor bound");
            }
        }
        // Live traffic keeps the ladder growing to the cap; a drained
        // fabric saturates it immediately.
        assert_eq!(plan.len(), MAX_WINDOWS_PER_ROUND);
        let drained = plan_windows(&[u64::MAX; 4], &dplan.dist, l);
        assert!(drained.len() <= 2, "saturated ladders stop early");
    }

    /// The multi-window extension of the interleaving test above: each
    /// round runs the whole `plan_windows` ladder, delivering window
    /// `k-1`'s cross-domain spawns before window `k` runs (the handshake
    /// the real scheduler implements with per-domain counters), with a
    /// fresh random domain order inside every window. Per-domain
    /// delivery order must still match the serial oracle exactly, and
    /// the ladder must genuinely grant multiple windows per rendezvous —
    /// otherwise this test degenerates into the single-window one.
    #[test]
    fn adaptive_multi_window_grants_match_serial_delivery_order() {
        const L: u64 = 55;
        let dplan = DomainPlan::new(8, 4, chain_neighbors(8));
        let d_count = dplan.count;

        fn mix(mut x: u64) -> u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        }
        let spawn = |d: usize, t: u64, id: u64, budget: u32| -> Option<(usize, u64, u64)> {
            if budget == 0 {
                return None;
            }
            let h = mix(id ^ t.rotate_left(32));
            let dst = match h % 4 {
                0 => d.saturating_sub(1),
                1 => (d + 1).min(d_count - 1),
                _ => d,
            };
            let at = if dst == d {
                t + 1 + (h >> 8) % 7
            } else {
                t + L + (h >> 8) % 97
            };
            Some((dst, at, mix(h)))
        };
        let seeds: Vec<(usize, u64, u64, u32)> = (0..d_count)
            .flat_map(|d| (0..3u64).map(move |k| (d, 10 + 13 * k, mix(0xC0DE + k + d as u64), 24)))
            .collect();

        let serial: Vec<Vec<(u64, u64)>> = {
            let mut queue: std::collections::BTreeSet<(u64, usize, u64, u32)> =
                seeds.iter().map(|&(d, t, id, b)| (t, d, id, b)).collect();
            let mut log = vec![Vec::new(); d_count];
            while let Some(&(t, d, id, b)) = queue.iter().next() {
                queue.remove(&(t, d, id, b));
                log[d].push((t, id));
                if let Some((dst, at, cid)) = spawn(d, t, id, b) {
                    queue.insert((at, dst, cid, b - 1));
                }
            }
            log
        };
        assert!(serial.iter().map(Vec::len).sum::<usize>() > 200);

        for trial in 0..25u64 {
            let mut rng = mix(0xFACE ^ trial);
            let mut queues: Vec<std::collections::BTreeSet<(u64, u64, u32)>> =
                vec![Default::default(); d_count];
            for &(d, t, id, b) in &seeds {
                queues[d].insert((t, id, b));
            }
            let mut log = vec![Vec::new(); d_count];
            let (mut rounds, mut windows) = (0u64, 0u64);
            loop {
                let mins: Vec<u64> = queues
                    .iter()
                    .map(|q| q.iter().next().map_or(u64::MAX, |&(t, _, _)| t))
                    .collect();
                if mins.iter().all(|&m| m == u64::MAX) {
                    break;
                }
                let ladder = plan_windows(&mins, &dplan.dist, L);
                rounds += 1;
                windows += ladder.len() as u64;
                // `sent[dst]`: cross spawns of the window being run,
                // delivered only before the *next* window — exactly what
                // the per-domain done-counter handshake guarantees.
                let mut sent: Vec<Vec<(u64, u64, u32)>> = vec![Vec::new(); d_count];
                for horizons in &ladder {
                    for (q, mb) in queues.iter_mut().zip(&mut sent) {
                        q.extend(mb.drain(..));
                    }
                    let mut order: Vec<usize> = (0..d_count).collect();
                    for i in (1..d_count).rev() {
                        rng = mix(rng);
                        order.swap(i, (rng as usize) % (i + 1));
                    }
                    for &d in &order {
                        let h = horizons[d];
                        while let Some(&(t, id, b)) = queues[d].iter().next() {
                            if t > h {
                                break;
                            }
                            queues[d].remove(&(t, id, b));
                            log[d].push((t, id));
                            if let Some((dst, at, cid)) = spawn(d, t, id, b) {
                                if dst == d {
                                    queues[d].insert((at, cid, b - 1));
                                } else {
                                    sent[dst].push((at, cid, b - 1));
                                }
                            }
                        }
                    }
                }
                for (q, mb) in queues.iter_mut().zip(&mut sent) {
                    q.extend(mb.drain(..));
                }
            }
            assert_eq!(log, serial, "interleaving {trial} diverged from serial");
            assert!(
                windows >= 3 * rounds,
                "the ladder granted only {windows} windows over {rounds} rounds"
            );
        }
    }

    #[test]
    fn panicking_party_poisons_instead_of_deadlocking() {
        let barrier = PhaseBarrier::new(2);
        let survivor = std::thread::scope(|s| {
            let h = s.spawn(|| barrier.wait());
            let p = s.spawn(|| {
                let _guard = barrier.guard();
                panic!("domain died");
            });
            assert!(p.join().is_err());
            h.join().expect("survivor must not panic")
        });
        assert_eq!(survivor, Err(BarrierPoisoned));
        // Later waits fail immediately.
        assert_eq!(barrier.wait(), Err(BarrierPoisoned));
    }
}
