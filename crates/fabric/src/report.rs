//! Run reports: what an experiment learns from one simulation, per port,
//! per cube and end-to-end.

use hmc_des::{Delay, Time};
use hmc_device::DeviceStats;
use hmc_link::LinkStats;
use hmc_packet::PortId;
use hmc_stats::{BandwidthMeter, LatencyRecorder};

use crate::config::CubeId;

/// Per-port measurement results — the counters the FPGA monitoring logic
/// reports back to the host after a run (Section III-B).
#[derive(Debug, Clone)]
pub struct PortReport {
    /// The port.
    pub port: PortId,
    /// The traffic source's reporting label (`"gups"`, `"stream"`,
    /// `"chase"`, `"offload"`, ...).
    pub source: &'static str,
    /// Requests issued (including unrecorded warmup traffic).
    pub issued: u64,
    /// Responses received (including unrecorded warmup traffic).
    pub completed: u64,
    /// Latency aggregate over the measurement window.
    pub latency: LatencyRecorder,
    /// Byte counter over the measurement window (paper bandwidth units:
    /// request + response packets including header, tail and payload).
    pub bytes: BandwidthMeter,
    /// Read transactions recorded in the measurement window.
    pub reads: u64,
    /// Write/atomic transactions recorded in the measurement window.
    pub writes: u64,
    /// The cube this port statically targeted, or `None` for an
    /// address-targeted (split) stream whose CUB field is derived per
    /// request — read [`PortReport::cube_completions`] for those.
    pub cube: Option<CubeId>,
    /// Completions recorded in the measurement window per destination
    /// cube — the per-cube attribution of a split stream. Compact,
    /// fabric-sized storage: indexed by [`CubeId::index`], grown only as
    /// far as the highest cube this port completed against (so 64-wide
    /// fabrics don't bloat every port); absent entries mean zero. For a
    /// fixed-targeting port only the targeted cube's slot is nonzero.
    pub cube_completions: Vec<u64>,
}

/// Counters of one cube's pass-through stage (absent on a single-cube
/// system, where no pass-through stage exists).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransitStats {
    /// Packets forwarded through the pass-through crossbar (local
    /// deliveries and transit alike).
    pub forwarded: u64,
    /// Crossbar grants where several inputs contended for one output —
    /// the fabric-level analogue of the device's switch conflicts.
    pub arbitration_conflicts: u64,
    /// Peak occupancy of each crossbar input, in flits.
    pub peak_input_flits: Vec<u32>,
    /// Serializer counters of each outbound fabric/host link, in port
    /// order.
    pub link_stats: Vec<LinkStats>,
}

impl TransitStats {
    /// Token stalls summed over this cube's outbound serializers — direct
    /// evidence of fabric backpressure.
    pub fn token_stalls(&self) -> u64 {
        self.link_stats.iter().map(|l| l.token_stalls).sum()
    }
}

/// One cube's share of a run.
#[derive(Debug, Clone)]
pub struct CubeReport {
    /// The cube.
    pub cube: CubeId,
    /// The cube-internal counters (vaults, quadrant switches, links).
    pub device: DeviceStats,
    /// Pass-through counters; `None` on a single-cube system.
    pub transit: Option<TransitStats>,
}

/// The outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-port results, in port order.
    pub ports: Vec<PortReport>,
    /// Length of the measurement window.
    pub elapsed: Delay,
    /// Cube 0's device counters (kept as a field for the single-cube
    /// experiments; multi-cube consumers read [`RunReport::cubes`]).
    pub device: DeviceStats,
    /// Per-cube results, in cube order.
    pub cubes: Vec<CubeReport>,
    /// Simulation time when the run quiesced.
    pub sim_end: Time,
}

impl RunReport {
    /// Merged latency aggregate across all ports.
    pub fn aggregate_latency(&self) -> LatencyRecorder {
        let mut total = LatencyRecorder::new();
        for p in &self.ports {
            total.merge(&p.latency);
        }
        total
    }

    /// Merged latency aggregate across the ports *statically* targeting
    /// one cube (address-targeted ports span cubes and are excluded; use
    /// [`RunReport::cube_completions`] for their per-cube attribution).
    pub fn cube_latency(&self, cube: CubeId) -> LatencyRecorder {
        let mut total = LatencyRecorder::new();
        for p in self.ports.iter().filter(|p| p.cube == Some(cube)) {
            total.merge(&p.latency);
        }
        total
    }

    /// Bidirectional bandwidth moved by the ports statically targeting
    /// one cube, GB/s over the measurement window.
    pub fn cube_bandwidth_gbs(&self, cube: CubeId) -> f64 {
        self.gbs_over_window(
            self.ports
                .iter()
                .filter(|p| p.cube == Some(cube))
                .map(|p| p.bytes.bytes())
                .sum(),
        )
    }

    /// Bidirectional bandwidth moved by the ports whose source carries
    /// `label` (e.g. `"gups"`, `"chase"`), GB/s over the measurement
    /// window — the bandwidth half of [`RunReport::source_summary`].
    pub fn source_bandwidth_gbs(&self, label: &str) -> f64 {
        self.gbs_over_window(
            self.ports
                .iter()
                .filter(|p| p.source == label)
                .map(|p| p.bytes.bytes())
                .sum(),
        )
    }

    /// The paper's bandwidth formula: `bytes` over the measurement
    /// window, in GB/s (zero for an empty window).
    fn gbs_over_window(&self, bytes: u64) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        bytes as f64 * 1e3 / self.elapsed.as_ps() as f64
    }

    /// Completions recorded against one destination cube, summed over
    /// every port — covers both fixed-targeting ports and split
    /// (address-targeted) streams, whose requests the host attributed per
    /// packet when it stamped the CUB field.
    pub fn cube_completions(&self, cube: CubeId) -> u64 {
        self.ports
            .iter()
            .map(|p| p.cube_completions.get(cube.index()).copied().unwrap_or(0))
            .sum()
    }

    /// Number of cubes that completed at least one recorded request — how
    /// widely a run's traffic actually spread across the fabric.
    pub fn cubes_hit(&self) -> usize {
        let span = self
            .ports
            .iter()
            .map(|p| p.cube_completions.len())
            .max()
            .unwrap_or(0);
        CubeId::all(span as u8)
            .filter(|&c| self.cube_completions(c) > 0)
            .count()
    }

    /// One cube's report.
    pub fn cube(&self, cube: CubeId) -> Option<&CubeReport> {
        self.cubes.get(cube.index())
    }

    /// Mean read latency in nanoseconds across all ports.
    pub fn mean_latency_ns(&self) -> f64 {
        self.aggregate_latency().mean_ns()
    }

    /// Mean read latency in microseconds across all ports.
    pub fn mean_latency_us(&self) -> f64 {
        self.mean_latency_ns() / 1e3
    }

    /// Maximum observed latency in microseconds across all ports.
    pub fn max_latency_us(&self) -> f64 {
        self.ports
            .iter()
            .map(|p| p.latency.max_us())
            .fold(0.0, f64::max)
    }

    /// Total accesses recorded in the measurement window.
    pub fn total_accesses(&self) -> u64 {
        self.ports.iter().map(|p| p.bytes.accesses()).sum()
    }

    /// Recorded reads across ports.
    pub fn total_reads(&self) -> u64 {
        self.ports.iter().map(|p| p.reads).sum()
    }

    /// Recorded writes across ports.
    pub fn total_writes(&self) -> u64 {
        self.ports.iter().map(|p| p.writes).sum()
    }

    /// Bidirectional bandwidth in GB/s over the measurement window, by the
    /// paper's formula (total request + response bytes / elapsed time).
    pub fn total_bandwidth_gbs(&self) -> f64 {
        self.gbs_over_window(self.ports.iter().map(|p| p.bytes.bytes()).sum())
    }

    /// Access throughput in accesses per second.
    pub fn accesses_per_second(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.total_accesses() as f64 * 1e12 / self.elapsed.as_ps() as f64
    }

    /// Little's-law estimate of mean outstanding requests during the
    /// window: arrival rate × mean time in system — the calculation behind
    /// Figure 14.
    pub fn estimated_outstanding(&self) -> f64 {
        self.accesses_per_second() * self.mean_latency_ns() * 1e-9
    }

    /// End-to-end switch contention: arbitration conflicts summed over
    /// every cube's internal quadrant switches *and* every pass-through
    /// crossbar — the fabric-wide version of the paper's NoC contention
    /// measure.
    pub fn total_switch_conflicts(&self) -> u64 {
        self.cubes
            .iter()
            .map(|c| {
                c.device.switch_conflicts
                    + c.transit.as_ref().map_or(0, |t| t.arbitration_conflicts)
            })
            .sum()
    }

    /// Per-source completion summary: for each distinct source label, the
    /// total requests issued, responses completed, and the merged latency
    /// aggregate — the closed-loop pipeline's per-source view of a mixed
    /// run (e.g. offload streams contending with GUPS background load).
    pub fn source_summary(&self) -> Vec<(&'static str, u64, u64, LatencyRecorder)> {
        let mut out: Vec<(&'static str, u64, u64, LatencyRecorder)> = Vec::new();
        for p in &self.ports {
            match out.iter_mut().find(|(label, ..)| *label == p.source) {
                Some((_, issued, completed, latency)) => {
                    *issued += p.issued;
                    *completed += p.completed;
                    latency.merge(&p.latency);
                }
                None => out.push((p.source, p.issued, p.completed, p.latency)),
            }
        }
        out
    }

    /// Packets forwarded by pass-through crossbars across all cubes.
    pub fn transit_forwarded(&self) -> u64 {
        self.cubes
            .iter()
            .filter_map(|c| c.transit.as_ref())
            .map(|t| t.forwarded)
            .sum()
    }

    /// Sums the retry-protocol counters over every transit-stage link in
    /// the fabric. All-zero on a fault-free run — the injection path is
    /// observably free when no [`crate::FaultPlan`] is armed.
    pub fn link_fault_totals(&self) -> LinkFaultTotals {
        let mut out = LinkFaultTotals::default();
        for stats in self
            .cubes
            .iter()
            .filter_map(|c| c.transit.as_ref())
            .flat_map(|t| t.link_stats.iter())
        {
            out.crc_errors += stats.crc_errors;
            out.down_drops += stats.down_drops;
            out.retries += stats.retries;
            out.retransmitted_flits += stats.retransmitted_flits;
            out.degraded_links += u64::from(stats.degraded);
        }
        out
    }
}

/// Fabric-wide sums of the per-link retry-protocol counters
/// ([`RunReport::link_fault_totals`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkFaultTotals {
    /// Transmissions the receiver rejected on CRC.
    pub crc_errors: u64,
    /// Transmissions cut by a link-down window.
    pub down_drops: u64,
    /// Retransmissions from retry buffers (`crc_errors + down_drops`).
    pub retries: u64,
    /// Flits of failed attempts that were re-serialized.
    pub retransmitted_flits: u64,
    /// Links latched at half width by the end of the run.
    pub degraded_links: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(latencies_ns: &[u64], bytes_per_access: u64, elapsed: Delay) -> RunReport {
        let mut latency = LatencyRecorder::new();
        let mut meter = BandwidthMeter::new();
        for &ns in latencies_ns {
            latency.record_ps(ns * 1_000);
            meter.add_bytes(bytes_per_access);
        }
        let cube_completions = vec![latencies_ns.len() as u64];
        RunReport {
            ports: vec![PortReport {
                port: PortId(0),
                source: "test",
                issued: latencies_ns.len() as u64,
                completed: latencies_ns.len() as u64,
                latency,
                bytes: meter,
                reads: latencies_ns.len() as u64,
                writes: 0,
                cube: Some(CubeId(0)),
                cube_completions,
            }],
            elapsed,
            device: DeviceStats::default(),
            cubes: vec![CubeReport {
                cube: CubeId(0),
                device: DeviceStats::default(),
                transit: None,
            }],
            sim_end: Time::ZERO + elapsed,
        }
    }

    #[test]
    fn bandwidth_uses_paper_formula() {
        // 10 accesses × 160 B in 1 µs = 1.6 GB/s.
        let r = report_with(&[1_000; 10], 160, Delay::from_us(1));
        assert!((r.total_bandwidth_gbs() - 1.6).abs() < 1e-9);
        assert_eq!(r.total_accesses(), 10);
        // All traffic targets cube 0.
        assert!((r.cube_bandwidth_gbs(CubeId(0)) - 1.6).abs() < 1e-9);
        assert_eq!(r.cube_bandwidth_gbs(CubeId(3)), 0.0);
    }

    #[test]
    fn little_law_identity() {
        // 10 accesses in 1 µs at 500 ns each → 10e6/s × 0.5e-6 s = 5.
        let r = report_with(&[500; 10], 48, Delay::from_us(1));
        assert!((r.estimated_outstanding() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn latency_aggregation() {
        let r = report_with(&[100, 300], 48, Delay::from_us(1));
        assert_eq!(r.mean_latency_ns(), 200.0);
        assert_eq!(r.max_latency_us(), 0.3);
        assert_eq!(r.cube_latency(CubeId(0)).count(), 2);
        assert_eq!(r.cube_latency(CubeId(1)).count(), 0);
    }

    #[test]
    fn empty_window_is_safe() {
        let r = report_with(&[], 0, Delay::ZERO);
        assert_eq!(r.total_bandwidth_gbs(), 0.0);
        assert_eq!(r.accesses_per_second(), 0.0);
        assert_eq!(r.estimated_outstanding(), 0.0);
    }

    #[test]
    fn fabric_aggregates_cover_all_cubes() {
        let mut r = report_with(&[100], 48, Delay::from_us(1));
        r.cubes.push(CubeReport {
            cube: CubeId(1),
            device: DeviceStats {
                switch_conflicts: 5,
                ..DeviceStats::default()
            },
            transit: Some(TransitStats {
                forwarded: 12,
                arbitration_conflicts: 3,
                peak_input_flits: vec![9, 0],
                link_stats: vec![LinkStats {
                    token_stalls: 2,
                    ..LinkStats::default()
                }],
            }),
        });
        assert_eq!(r.total_switch_conflicts(), 8);
        assert_eq!(r.transit_forwarded(), 12);
        let t = r.cube(CubeId(1)).unwrap().transit.as_ref().unwrap();
        assert_eq!(t.token_stalls(), 2);
    }
}
