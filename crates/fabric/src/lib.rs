//! # hmc-fabric
//!
//! Multi-cube HMC memory networks: chain, star and ring topologies of
//! [`hmc_device`] cubes behind one host, with HMC-style source routing.
//!
//! The reproduced paper closes by observing that the HMC's internal NoC —
//! not its DRAM — governs loaded latency, and that the effect compounds
//! once cubes are composed into *memory networks* over their off-chip
//! links (the chaining-capable testbed its companion study measures).
//! This crate models exactly that composition:
//!
//! - [`FabricConfig`] describes the network: identical cubes, a
//!   [`Topology`], per-hop pass-through/link tuning ([`HopTuning`])
//!   derived from the single-cube calibration;
//! - [`RouteTable`] is the static source-routing function (total,
//!   loop-free, deterministic — property-tested);
//! - [`FabricSim`] runs the whole network on the deterministic event
//!   engine. Transit cubes forward packets through a real arbitrated
//!   pass-through crossbar ([`hmc_noc::SwitchCore`]) with finite buffers
//!   and credit flow control, so fabric traffic contends exactly where
//!   the paper says it must: in the NoC.
//!
//! With one cube the component graph degenerates to the paper's
//! single-cube system — `hmc_sim::SystemSim` is a thin wrapper over that
//! case.
//!
//! ```
//! use hmc_des::Delay;
//! use hmc_fabric::{CubeId, FabricConfig, FabricPortSpec, FabricSim};
//! use hmc_mapping::AccessPattern;
//! use hmc_host::GupsOp;
//! use hmc_packet::PayloadSize;
//!
//! let cfg = FabricConfig::chain(2018, 3);
//! let filter = AccessPattern::Vaults { count: 16 }.filter(&cfg.cube.map);
//! let port = FabricPortSpec::gups(filter, GupsOp::Read(PayloadSize::B128), CubeId(2));
//! let report = FabricSim::new(cfg, vec![port])
//!     .run_gups(Delay::from_us(5), Delay::from_us(10));
//! assert!(report.cubes[2].device.requests_received > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod domain;
mod report;
mod route;
mod sim;
pub mod watchdog;

pub use config::{CubeId, FabricConfig, HopTuning, Topology};
pub use hmc_faults::{FaultPlan, LinkFaultSpec, LinkKey};
pub use hmc_mapping::{CubePolicy, CubeTargeting, FabricAddressMap, SplitError};
pub use report::{CubeReport, LinkFaultTotals, PortReport, RunReport, TransitStats};
pub use route::RouteTable;
pub use sim::{FabricPortSpec, FabricSim, SchedStats, GUPS_TAGS, STREAM_TAGS};
